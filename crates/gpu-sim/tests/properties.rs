//! Property-based tests for the simulator substrate: windowed allocation,
//! cache geometry, DRAM channel behaviour, and whole-SM conservation laws.

use proptest::prelude::*;

use gpu_sim::{
    dram::{DramChannel, DramRequest},
    Gpu, GpuConfig, KernelDesc, LinearAllocator, ProbeResult, ProgramSpec, Region, SchedulerKind,
    SetAssocCache,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn windowed_allocations_stay_inside_their_window(
        window_start in 0u32..200,
        window_len in 1u32..200,
        lens in prop::collection::vec(1u32..40, 1..20),
    ) {
        let mut alloc = LinearAllocator::new(256);
        let window = Region { start: window_start, len: window_len.min(256 - window_start.min(256)) };
        let mut live: Vec<Region> = Vec::new();
        for len in lens {
            if let Some(r) = alloc.alloc_in_window(len, window) {
                if r.len > 0 {
                    prop_assert!(window.contains(&r), "{r:?} outside {window:?}");
                    for l in &live {
                        prop_assert!(r.end() <= l.start || l.end() <= r.start);
                    }
                    live.push(r);
                }
            }
        }
    }

    #[test]
    fn disjoint_windows_never_collide(
        lens_a in prop::collection::vec(1u32..30, 1..12),
        lens_b in prop::collection::vec(1u32..30, 1..12),
    ) {
        let mut alloc = LinearAllocator::new(256);
        let wa = Region { start: 0, len: 128 };
        let wb = Region { start: 128, len: 128 };
        let mut in_a = Vec::new();
        let mut in_b = Vec::new();
        for (la, lb) in lens_a.iter().zip(&lens_b) {
            if let Some(r) = alloc.alloc_in_window(*la, wa) {
                in_a.push(r);
            }
            if let Some(r) = alloc.alloc_in_window(*lb, wb) {
                in_b.push(r);
            }
        }
        for a in &in_a {
            prop_assert!(a.len == 0 || wa.contains(a));
        }
        for b in &in_b {
            prop_assert!(b.len == 0 || wb.contains(b));
        }
    }

    #[test]
    fn cache_miss_rate_reflects_footprint(
        footprint in 1u64..64,
        passes in 2u32..6,
    ) {
        // 32-line fully covered footprints converge to 100% hits after the
        // first pass; larger-than-cache footprints keep missing.
        let mut cache = SetAssocCache::new(32 * 128, 4, 128);
        let mut last_pass_misses = 0u64;
        for pass in 0..passes {
            last_pass_misses = 0;
            for line in 0..footprint {
                if cache.access(line) == ProbeResult::Miss {
                    cache.fill(line);
                    if pass == passes - 1 {
                        last_pass_misses += 1;
                    }
                }
            }
        }
        if footprint <= 32 {
            prop_assert_eq!(last_pass_misses, 0, "resident footprint must hit");
        } else {
            prop_assert!(last_pass_misses > 0, "oversized footprint must miss");
        }
    }

    #[test]
    fn dram_completions_cover_all_requests(
        lines in prop::collection::vec(0u64..512, 1..24),
    ) {
        let cfg = GpuConfig::isca_baseline();
        let mut ch = DramChannel::new(&cfg.mem, cfg.core_per_dram_clock());
        let mut pending = lines.len();
        let mut submitted = 0usize;
        let mut now = 0u64;
        let mut seen = Vec::new();
        while pending > 0 && now < 100_000 {
            if submitted < lines.len() && ch.can_accept() {
                ch.enqueue(DramRequest {
                    line: lines[submitted],
                    tag: submitted as u64,
                    arrival: now,
                });
                submitted += 1;
            }
            if let Some(c) = ch.tick(now) {
                prop_assert!(c.ready_at >= now);
                seen.push(c.req.tag);
                pending -= 1;
            }
            now += 1;
        }
        prop_assert_eq!(pending, 0, "all requests serviced");
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), lines.len(), "each exactly once");
    }

    #[test]
    fn sm_residency_is_conserved_under_random_launch_churn(
        seeds in prop::collection::vec(1u64..1_000, 1..4),
        cycles in 200u64..1_500,
    ) {
        let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
        let ids: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                gpu.add_kernel(KernelDesc {
                    name: format!("k{i}"),
                    grid_ctas: 64,
                    threads_per_cta: 32 + 32 * (seed % 4) as u32,
                    regs_per_thread: 8 + (seed % 16) as u32,
                    shmem_per_cta: (seed % 5) as u32 * 1024,
                    program: ProgramSpec {
                        body_len: 24,
                        gload_frac: 0.1,
                        dep_distance: 4,
                        seed,
                        ..ProgramSpec::default()
                    }
                    .generate(),
                    iterations: 2,
                    pattern: gpu_sim::AccessPattern::Streaming { transactions: 1 },
                    icache_miss_rate: 0.0,
                    shmem_conflict_degree: 1,
                    seed,
                })
            })
            .collect();
        for c in 0..cycles {
            // Deterministic churny launching.
            let k = ids[(c as usize) % ids.len()];
            let sm = (c as usize * 7) % gpu.num_sms();
            let _ = gpu.try_launch(k, sm);
            gpu.tick();
        }
        // Conservation: per-SM accounting matches per-kernel residency sums.
        for sm in gpu.sms() {
            let total: u32 = (0..ids.len()).map(|k| sm.kernel_ctas(k)).sum();
            prop_assert_eq!(total, sm.resident_ctas());
        }
        // Dispatched = completed + resident.
        for &k in &ids {
            let meta = gpu.kernel_meta(k);
            let resident: u64 = (0..gpu.num_sms())
                .map(|s| u64::from(gpu.sm(s).kernel_ctas(k.0)))
                .sum();
            prop_assert_eq!(meta.dispatched_ctas, meta.completed_ctas + resident);
        }
    }
}
