//! Randomized property tests for the simulator substrate: windowed
//! allocation, cache geometry, DRAM channel behaviour, and whole-SM
//! conservation laws.
//!
//! Cases are generated with the in-tree deterministic `SimRng`
//! (xoshiro256++) so the suite runs with `--offline` and replays
//! identically everywhere; each assertion carries its case index, which
//! together with the fixed seed reproduces the exact inputs.

use gpu_sim::{
    dram::{DramChannel, DramRequest},
    Gpu, GpuConfig, KernelDesc, LinearAllocator, ProbeResult, ProgramSpec, Region, SchedulerKind,
    SetAssocCache, SimRng,
};

#[test]
fn windowed_allocations_stay_inside_their_window() {
    let mut rng = SimRng::seed_from_u64(0xA110_0001);
    for case in 0..48 {
        let window_start = rng.range_u64(200) as u32;
        let window_len = 1 + rng.range_u64(199) as u32;
        let mut alloc = LinearAllocator::new(256);
        let window = Region {
            start: window_start,
            len: window_len.min(256 - window_start.min(256)),
        };
        let mut live: Vec<Region> = Vec::new();
        let requests = 1 + rng.range_usize(19);
        for _ in 0..requests {
            let len = 1 + rng.range_u64(39) as u32;
            if let Some(r) = alloc.alloc_in_window(len, window) {
                if r.len > 0 {
                    assert!(window.contains(&r), "case {case}: {r:?} outside {window:?}");
                    for l in &live {
                        assert!(
                            r.end() <= l.start || l.end() <= r.start,
                            "case {case}: {r:?} overlaps {l:?}"
                        );
                    }
                    live.push(r);
                }
            }
        }
    }
}

#[test]
fn disjoint_windows_never_collide() {
    let mut rng = SimRng::seed_from_u64(0xA110_0002);
    for case in 0..48 {
        let mut alloc = LinearAllocator::new(256);
        let wa = Region { start: 0, len: 128 };
        let wb = Region {
            start: 128,
            len: 128,
        };
        let mut in_a = Vec::new();
        let mut in_b = Vec::new();
        let rounds = 1 + rng.range_usize(11);
        for _ in 0..rounds {
            let la = 1 + rng.range_u64(29) as u32;
            let lb = 1 + rng.range_u64(29) as u32;
            if let Some(r) = alloc.alloc_in_window(la, wa) {
                in_a.push(r);
            }
            if let Some(r) = alloc.alloc_in_window(lb, wb) {
                in_b.push(r);
            }
        }
        for a in &in_a {
            assert!(a.len == 0 || wa.contains(a), "case {case}: {a:?}");
        }
        for b in &in_b {
            assert!(b.len == 0 || wb.contains(b), "case {case}: {b:?}");
        }
    }
}

#[test]
fn cache_miss_rate_reflects_footprint() {
    let mut rng = SimRng::seed_from_u64(0xA110_0003);
    for case in 0..48 {
        let footprint = 1 + rng.range_u64(63);
        let passes = 2 + rng.range_u64(4) as u32;
        // 32-line fully covered footprints converge to 100% hits after the
        // first pass; larger-than-cache footprints keep missing.
        let mut cache = SetAssocCache::new(32 * 128, 4, 128);
        let mut last_pass_misses = 0u64;
        for pass in 0..passes {
            last_pass_misses = 0;
            for line in 0..footprint {
                if cache.access(line) == ProbeResult::Miss {
                    cache.fill(line);
                    if pass == passes - 1 {
                        last_pass_misses += 1;
                    }
                }
            }
        }
        if footprint <= 32 {
            assert_eq!(
                last_pass_misses, 0,
                "case {case}: resident footprint must hit"
            );
        } else {
            assert!(
                last_pass_misses > 0,
                "case {case}: oversized footprint must miss"
            );
        }
    }
}

#[test]
fn dram_completions_cover_all_requests() {
    let mut rng = SimRng::seed_from_u64(0xA110_0004);
    for case in 0..48 {
        let lines: Vec<u64> = (0..1 + rng.range_usize(23))
            .map(|_| rng.range_u64(512))
            .collect();
        let cfg = GpuConfig::isca_baseline();
        let mut ch = DramChannel::new(&cfg.mem, cfg.core_per_dram_clock());
        let mut pending = lines.len();
        let mut submitted = 0usize;
        let mut now = 0u64;
        let mut seen = Vec::new();
        while pending > 0 && now < 100_000 {
            if submitted < lines.len() && ch.can_accept() {
                ch.enqueue(DramRequest {
                    line: lines[submitted],
                    tag: submitted as u64,
                    arrival: now,
                });
                submitted += 1;
            }
            if let Some(c) = ch.tick(now) {
                assert!(c.ready_at >= now, "case {case}");
                seen.push(c.req.tag);
                pending -= 1;
            }
            now += 1;
        }
        assert_eq!(pending, 0, "case {case}: all requests serviced");
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), lines.len(), "case {case}: each exactly once");
    }
}

#[test]
fn sm_residency_is_conserved_under_random_launch_churn() {
    let mut rng = SimRng::seed_from_u64(0xA110_0005);
    for case in 0..24 {
        let seeds: Vec<u64> = (0..1 + rng.range_usize(3))
            .map(|_| 1 + rng.range_u64(999))
            .collect();
        let cycles = 200 + rng.range_u64(1_300);
        let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
        let ids: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                gpu.add_kernel(KernelDesc {
                    name: format!("k{i}"),
                    grid_ctas: 64,
                    threads_per_cta: 32 + 32 * (seed % 4) as u32,
                    regs_per_thread: 8 + (seed % 16) as u32,
                    shmem_per_cta: (seed % 5) as u32 * 1024,
                    program: ProgramSpec {
                        body_len: 24,
                        gload_frac: 0.1,
                        dep_distance: 4,
                        seed,
                        ..ProgramSpec::default()
                    }
                    .generate(),
                    iterations: 2,
                    pattern: gpu_sim::AccessPattern::Streaming { transactions: 1 },
                    icache_miss_rate: 0.0,
                    shmem_conflict_degree: 1,
                    seed,
                })
            })
            .collect();
        for c in 0..cycles {
            // Deterministic churny launching.
            let k = ids[(c as usize) % ids.len()];
            let sm = (c as usize * 7) % gpu.num_sms();
            let _ = gpu.try_launch(k, sm);
            gpu.tick();
        }
        // Conservation: per-SM accounting matches per-kernel residency sums.
        for sm in gpu.sms() {
            let total: u32 = (0..ids.len()).map(|k| sm.kernel_ctas(k)).sum();
            assert_eq!(total, sm.resident_ctas(), "case {case}");
        }
        // Dispatched = completed + resident.
        for &k in &ids {
            let meta = gpu.kernel_meta(k);
            let resident: u64 = (0..gpu.num_sms())
                .map(|s| u64::from(gpu.sm(s).kernel_ctas(k.0)))
                .sum();
            assert_eq!(
                meta.dispatched_ctas,
                meta.completed_ctas + resident,
                "case {case}"
            );
        }
    }
}
