//! Property tests for the struct-of-arrays warp scoreboard.
//!
//! The SM maintains per-slot bitmasks (residency, finished, barrier,
//! i-buffer, mem-pending) plus head-readiness arrays incrementally, and the
//! schedulers select warps by mask intersection. These tests drive random
//! issue/fill/barrier/launch/evict sequences with the in-tree deterministic
//! `SimRng` and re-derive the scoreboard from the `Option<Warp>` slots (the
//! naive oracle) after every step; any stale bit panics with the slot and
//! field that diverged.

use gpu_sim::{
    AccessPattern, GpuConfig, KernelDesc, KernelId, MemSubsystem, ProgramSpec, SchedulerKind,
    SimRng, Sm,
};

fn kernel(name: &str, spec: ProgramSpec, iterations: u32, seed: u64) -> KernelDesc {
    KernelDesc {
        name: name.into(),
        grid_ctas: 1024,
        threads_per_cta: 128,
        regs_per_thread: 16,
        shmem_per_cta: 0,
        program: spec.generate(),
        iterations,
        pattern: AccessPattern::Random {
            footprint_lines: 1 << 14,
            transactions: 2,
        },
        icache_miss_rate: 0.01,
        shmem_conflict_degree: 1,
        seed,
    }
}

/// The three behaviour classes the scoreboard must track: serial ALU
/// chains (RAW bits), load-heavy streams (mem-pending bits and MSHR
/// fills), and barrier-synchronized CTAs (barrier park/release).
fn kernel_mix() -> Vec<KernelDesc> {
    vec![
        kernel(
            "alu",
            ProgramSpec {
                body_len: 24,
                dep_distance: 2,
                gload_frac: 0.0,
                ..ProgramSpec::default()
            },
            3,
            11,
        ),
        kernel(
            "mem",
            ProgramSpec {
                body_len: 24,
                dep_distance: 3,
                gload_frac: 0.4,
                gstore_frac: 0.1,
                ..ProgramSpec::default()
            },
            2,
            13,
        ),
        kernel(
            "bar",
            ProgramSpec {
                body_len: 24,
                dep_distance: 4,
                gload_frac: 0.2,
                barrier_frac: 0.15,
                ..ProgramSpec::default()
            },
            2,
            17,
        ),
    ]
}

/// Random issue/fill/barrier/exit sequences: every step (tick, fill batch,
/// launch, evict) is followed by a full oracle re-derivation. 6 seeds x
/// both scheduler kinds x 1500 steps each.
#[test]
fn bitmask_scoreboard_matches_naive_oracle_under_random_sequences() {
    let cfg = GpuConfig::isca_baseline();
    let descs = kernel_mix();
    for (case, kind) in [SchedulerKind::GreedyThenOldest, SchedulerKind::RoundRobin]
        .into_iter()
        .flat_map(|k| (0..6u64).map(move |s| (s, k)))
    {
        let mut rng = SimRng::seed_from_u64(
            0x50A0_0000 + case * 7 + u64::from(matches!(kind, SchedulerKind::RoundRobin)),
        );
        let mut sm = Sm::new(0, &cfg, kind);
        let mut mem = MemSubsystem::new(&cfg);
        let mut kernel_insts = vec![0u64; descs.len()];
        let mut responses = Vec::new();
        let mut cta_counter = [0u64; 3];
        let mut now = 0u64;
        for step in 0..1500u64 {
            let roll = rng.range_u64(100);
            if roll < 8 {
                // Launch a CTA of a random kernel (may fail when full).
                let k = rng.range_usize(descs.len());
                if sm.launch_cta(&descs[k], KernelId(k), cta_counter[k]) {
                    cta_counter[k] += 1;
                }
            } else if roll < 10 {
                // Evict a random kernel mid-flight (stale fills must be
                // dropped by generation checks, bits must clear).
                let k = rng.range_usize(descs.len());
                sm.evict_kernel(k, &descs[k]);
            } else {
                sm.tick(now, &mut mem, &descs, &mut kernel_insts);
                responses.clear();
                mem.tick(now, &mut responses);
                let lines: Vec<_> = responses.iter().map(|r| r.line).collect();
                sm.on_fill_batch(&lines, now);
                now += 1;
            }
            sm.check_scoreboard();
            // The mask views must agree with their per-slot getters too.
            let t = sm.scoreboard();
            assert_eq!(
                t.live(),
                t.resident_mask()
                    & !{
                        let mut f = 0u64;
                        for slot in 0..sm.warp_slot_count() {
                            if sm.warp(slot).is_some_and(gpu_sim::Warp::finished) {
                                f |= 1 << slot;
                            }
                        }
                        f
                    },
                "case {case} step {step}: live() disagrees with warps"
            );
        }
        assert!(
            kernel_insts.iter().sum::<u64>() > 0,
            "case {case}: sequences must make progress"
        );
    }
}

/// The single-popcount occupancy accumulator must equal the old per-warp
/// accumulation (count live warps slot by slot every cycle) on a
/// heterogeneous co-run that launches, retires, and evicts CTAs.
#[test]
fn count_ones_occupancy_matches_per_warp_accumulation() {
    let cfg = GpuConfig::isca_baseline();
    let descs = kernel_mix();
    let mut sm = Sm::new(0, &cfg, SchedulerKind::GreedyThenOldest);
    let mut mem = MemSubsystem::new(&cfg);
    let mut kernel_insts = vec![0u64; descs.len()];
    let mut responses = Vec::new();
    for c in 0..2 {
        assert!(sm.launch_cta(&descs[0], KernelId(0), c));
        assert!(sm.launch_cta(&descs[1], KernelId(1), c));
    }
    let mut expected: u128 = 0;
    for now in 0..4000u64 {
        if now == 1000 {
            assert!(sm.launch_cta(&descs[2], KernelId(2), 0));
        }
        if now == 2500 {
            sm.evict_kernel(1, &descs[1]);
        }
        sm.tick(now, &mut mem, &descs, &mut kernel_insts);
        responses.clear();
        mem.tick(now, &mut responses);
        for r in &responses {
            sm.on_fill(r.line, now);
        }
        // Old-style accumulation: walk every slot, count live warps.
        let mut live = 0u32;
        for slot in 0..sm.warp_slot_count() {
            if sm.warp(slot).is_some_and(|w| !w.finished()) {
                live += 1;
            }
        }
        expected += u128::from(live);
    }
    assert!(expected > 0, "co-run must have live warps");
    assert_eq!(
        sm.stats().warps_active_acc,
        expected,
        "popcount accumulator must match per-warp accumulation"
    );
    let max_warps = cfg.sm.max_warps();
    let avg = sm.stats().avg_warp_occupancy(max_warps);
    let manual = expected as f64 / (4000.0 * f64::from(max_warps));
    assert!(
        (avg - manual).abs() < 1e-12,
        "avg_warp_occupancy ({avg}) must match manual average ({manual})"
    );
}
