//! Calibration scratchpad: prints each benchmark's IPC-vs-CTA-count curve
//! (the raw data behind Fig. 3a) so the synthetic parameterization can be
//! eyeballed quickly. The real figure generator lives in `ws-bench`.

use gpu_sim::{Gpu, GpuConfig, KernelId, SchedulerKind};
use ws_workloads::suite;

fn run_with_cap(bench: &ws_workloads::Benchmark, cap: u32, cycles: u64) -> f64 {
    let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
    let k = gpu.add_kernel(bench.desc.clone());
    let top_up = |gpu: &mut Gpu, k: KernelId| {
        for s in 0..gpu.num_sms() {
            while gpu.sm(s).kernel_ctas(0) < cap && gpu.try_launch(k, s) {}
        }
    };
    top_up(&mut gpu, k);
    // Warm up, then measure.
    let warm = cycles / 4;
    for _ in 0..warm {
        gpu.tick();
        top_up(&mut gpu, k);
    }
    let start_insts = gpu.kernel_insts(k);
    for _ in 0..cycles {
        gpu.tick();
        top_up(&mut gpu, k);
    }
    (gpu.kernel_insts(k) - start_insts) as f64 / cycles as f64
}

fn main() {
    let cycles: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    for b in suite() {
        let max = b.max_ctas_baseline();
        print!("{:4} (max {max}): ", b.abbrev);
        let mut ipcs = Vec::new();
        for n in 1..=max {
            ipcs.push(run_with_cap(&b, n, cycles));
        }
        let best = ipcs.iter().fold(0.0f64, |a, &x| a.max(x));
        for ipc in &ipcs {
            print!("{:5.2} ", ipc / best);
        }
        println!("  (peak IPC {best:.1})");
    }
}
