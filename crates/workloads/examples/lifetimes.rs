//! Scratch: per-benchmark CTA lifetime at full isolation occupancy.
use gpu_sim::{Gpu, GpuConfig, SchedulerKind};
use ws_workloads::suite;

fn main() {
    for b in suite() {
        let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
        let k = gpu.add_kernel(b.desc.clone());
        let cycles = 60_000u64;
        for _ in 0..cycles {
            for s in 0..gpu.num_sms() {
                while gpu.try_launch(k, s) {}
            }
            gpu.tick();
        }
        let meta = gpu.kernel_meta(k);
        let resident: u32 = gpu.sms().map(|s| s.resident_ctas()).sum();
        let avg_life = if meta.completed_ctas > 0 {
            (f64::from(resident) * cycles as f64) / meta.completed_ctas as f64
        } else {
            f64::INFINITY
        };
        println!(
            "{:4}: completed {:5}, resident {:3}, avg CTA lifetime ~{:.0} cycles",
            b.abbrev, meta.completed_ctas, resident, avg_life
        );
    }
}
