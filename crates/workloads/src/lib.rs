//! # ws-workloads
//!
//! The synthetic GPGPU benchmark suite for the Warped-Slicer reproduction:
//! the ten applications of Table II (BLK, BFS, DXT, HOT, IMG, KNN, LBM, MM,
//! MVP, NN) expressed as deterministic synthetic kernels for `gpu-sim`, plus
//! the multiprogrammed pair/triple workloads of Fig. 6, Table III and
//! Fig. 8.
//!
//! Each benchmark reproduces the paper's grid/block geometry and
//! register/shared-memory demand exactly, and its instruction mix, register
//! dependence distance, and memory-access pattern are chosen so the
//! benchmark exhibits the same scaling archetype (Fig. 3a) and
//! compute/memory/cache classification as in the paper.
//!
//! ```
//! use ws_workloads::{by_abbrev, suite, all_pairs};
//!
//! assert_eq!(suite().len(), 10);
//! assert_eq!(all_pairs().len(), 30);
//! let hot = by_abbrev("HOT").expect("in suite");
//! assert_eq!(hot.desc.threads_per_cta, 256);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod mix;
pub mod suite;

pub use mix::{
    all_pairs, all_triples, compute_cache_pairs, compute_compute_pairs, compute_memory_pairs, Pair,
    PairCategory, Triple,
};
pub use suite::{
    bfs, blk, by_abbrev, dxt, extended_suite, hot, img, knn, lbm, mm, mum, mvp, nn, suite,
    Benchmark, PaperRow, ScalingArchetype, Waiver, WorkloadClass,
};
