//! Multiprogrammed workload construction: the 30 two-kernel pairs of
//! Fig. 6 / Table III and the 15 three-kernel combinations of Fig. 8.

use crate::suite::{by_abbrev, Benchmark};

/// Pairing category (Fig. 6's three sub-plots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairCategory {
    /// A compute benchmark paired with a cache-sensitive benchmark.
    ComputeCache,
    /// A compute benchmark paired with a memory benchmark.
    ComputeMemory,
    /// Two compute benchmarks.
    ComputeCompute,
}

impl std::fmt::Display for PairCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ComputeCache => write!(f, "Compute + Cache"),
            Self::ComputeMemory => write!(f, "Compute + Memory"),
            Self::ComputeCompute => write!(f, "Compute + Compute"),
        }
    }
}

/// A two-kernel multiprogrammed workload.
#[derive(Debug, Clone)]
pub struct Pair {
    /// First kernel (listed first in Table III).
    pub a: Benchmark,
    /// Second kernel.
    pub b: Benchmark,
    /// Fig. 6 category.
    pub category: PairCategory,
}

impl Pair {
    /// `"DXT_MVP"`-style label used throughout the paper's figures.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}_{}", self.a.abbrev, self.b.abbrev)
    }
}

const COMPUTE: [&str; 4] = ["DXT", "HOT", "IMG", "MM"];
const MEMORY: [&str; 4] = ["BFS", "BLK", "KNN", "LBM"];
const CACHE: [&str; 2] = ["MVP", "NN"];

fn pair(a: &str, b: &str, category: PairCategory) -> Pair {
    Pair {
        // Invariant: abbreviations come from the static tables above, all of
        // which name suite members. xtask-allow: no-unwrap
        a: by_abbrev(a).expect("known benchmark"),
        b: by_abbrev(b).expect("known benchmark"), // xtask-allow: no-unwrap
        category,
    }
}

/// The eight Compute + Cache pairs, in Table III order.
#[must_use]
pub fn compute_cache_pairs() -> Vec<Pair> {
    COMPUTE
        .iter()
        .flat_map(|c| {
            CACHE
                .iter()
                .map(move |k| pair(c, k, PairCategory::ComputeCache))
        })
        .collect()
}

/// The sixteen Compute + Memory pairs, in Table III order.
#[must_use]
pub fn compute_memory_pairs() -> Vec<Pair> {
    COMPUTE
        .iter()
        .flat_map(|c| {
            MEMORY
                .iter()
                .map(move |m| pair(c, m, PairCategory::ComputeMemory))
        })
        .collect()
}

/// The six Compute + Compute pairs, in Table III order.
#[must_use]
pub fn compute_compute_pairs() -> Vec<Pair> {
    [
        ("DXT", "IMG"),
        ("HOT", "DXT"),
        ("HOT", "IMG"),
        ("MM", "DXT"),
        ("MM", "HOT"),
        ("MM", "IMG"),
    ]
    .into_iter()
    .map(|(a, b)| pair(a, b, PairCategory::ComputeCompute))
    .collect()
}

/// All 30 evaluation pairs of Fig. 6, grouped by category.
#[must_use]
pub fn all_pairs() -> Vec<Pair> {
    let mut v = compute_cache_pairs();
    v.extend(compute_memory_pairs());
    v.extend(compute_compute_pairs());
    v
}

/// A three-kernel multiprogrammed workload (Fig. 8).
#[derive(Debug, Clone)]
pub struct Triple {
    /// The memory or cache benchmark.
    pub a: Benchmark,
    /// First compute benchmark.
    pub b: Benchmark,
    /// Second compute benchmark.
    pub c: Benchmark,
}

impl Triple {
    /// `"BLK_IMG_DXT"`-style label.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}_{}_{}", self.a.abbrev, self.b.abbrev, self.c.abbrev)
    }

    /// The three benchmarks in order.
    #[must_use]
    pub fn members(&self) -> [&Benchmark; 3] {
        [&self.a, &self.b, &self.c]
    }
}

/// The 15 three-kernel combinations of Fig. 8: each memory/cache benchmark
/// with each of the compute-compute pairs {IMG+DXT, MM+DXT, MM+IMG}.
///
/// BFS and HOT are excluded, as in the paper, because their CTA geometry is
/// too large to co-locate three kernels.
#[must_use]
pub fn all_triples() -> Vec<Triple> {
    let firsts = ["BLK", "KNN", "LBM", "NN", "MVP"];
    let compute_pairs = [("IMG", "DXT"), ("MM", "DXT"), ("MM", "IMG")];
    firsts
        .iter()
        .flat_map(|a| {
            compute_pairs.iter().map(move |(b, c)| Triple {
                // Static suite abbreviations, as in pair() above.
                // xtask-allow: no-unwrap
                a: by_abbrev(a).expect("known benchmark"),
                b: by_abbrev(b).expect("known benchmark"), // xtask-allow: no-unwrap
                c: by_abbrev(c).expect("known benchmark"), // xtask-allow: no-unwrap
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::WorkloadClass;

    #[test]
    fn thirty_pairs_total() {
        let pairs = all_pairs();
        assert_eq!(pairs.len(), 30);
        assert_eq!(compute_cache_pairs().len(), 8);
        assert_eq!(compute_memory_pairs().len(), 16);
        assert_eq!(compute_compute_pairs().len(), 6);
    }

    #[test]
    fn pair_labels_are_unique() {
        let mut labels: Vec<String> = all_pairs().iter().map(Pair::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 30);
    }

    #[test]
    fn categories_match_member_classes() {
        for p in all_pairs() {
            match p.category {
                PairCategory::ComputeCache => {
                    assert_eq!(p.a.class, WorkloadClass::Compute);
                    assert_eq!(p.b.class, WorkloadClass::Cache);
                }
                PairCategory::ComputeMemory => {
                    assert_eq!(p.a.class, WorkloadClass::Compute);
                    assert_eq!(p.b.class, WorkloadClass::Memory);
                }
                PairCategory::ComputeCompute => {
                    assert_eq!(p.a.class, WorkloadClass::Compute);
                    assert_eq!(p.b.class, WorkloadClass::Compute);
                }
            }
        }
    }

    #[test]
    fn fifteen_triples_excluding_bfs_and_hot() {
        let triples = all_triples();
        assert_eq!(triples.len(), 15);
        for t in &triples {
            for m in t.members() {
                assert_ne!(m.abbrev, "BFS");
                assert_ne!(m.abbrev, "HOT");
            }
            // Two compute kernels plus one memory/cache kernel.
            assert_eq!(t.b.class, WorkloadClass::Compute);
            assert_eq!(t.c.class, WorkloadClass::Compute);
            assert_ne!(t.a.class, WorkloadClass::Compute);
        }
    }

    #[test]
    fn table_iii_compute_compute_order() {
        let labels: Vec<String> = compute_compute_pairs().iter().map(Pair::label).collect();
        assert_eq!(
            labels,
            vec!["DXT_IMG", "HOT_DXT", "HOT_IMG", "MM_DXT", "MM_HOT", "MM_IMG"]
        );
    }

    #[test]
    fn fig8_first_triple_is_blk_img_dxt() {
        assert_eq!(all_triples()[0].label(), "BLK_IMG_DXT");
    }
}
