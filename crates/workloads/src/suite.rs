//! The ten-benchmark suite of Table II, instantiated as synthetic kernels.
//!
//! Each benchmark is parameterized so the *mechanisms* behind its paper
//! behaviour are present: its grid/block geometry and register/shared-memory
//! demand are taken directly from Table II (they determine occupancy limits
//! and fragmentation), while its instruction mix, dependence distance and
//! memory pattern are chosen so that the benchmark lands in the right
//! scaling archetype of Fig. 3a and the right compute/memory/cache class.

use gpu_sim::{AccessPattern, GpuConfig, KernelDesc, ProgramSpec};

/// Workload class from Table II's `Type` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Low L2 MPKI, pipeline-bound.
    Compute,
    /// High L2 MPKI (>= 30 in the paper), DRAM-bandwidth-bound.
    Memory,
    /// L1-capacity-sensitive: performance peaks below full occupancy.
    Cache,
}

impl std::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Compute => write!(f, "Compute"),
            Self::Memory => write!(f, "Memory"),
            Self::Cache => write!(f, "Cache"),
        }
    }
}

/// Scaling archetype of Fig. 3a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalingArchetype {
    /// Performance keeps improving up to the occupancy limit (HOT).
    ComputeNonSaturating,
    /// Performance plateaus before the occupancy limit (IMG, DXT, MM).
    ComputeSaturating,
    /// Performance saturates very quickly on DRAM bandwidth (BLK, BFS, ...).
    MemorySaturating,
    /// Performance peaks and then degrades from L1 thrashing (NN, MVP).
    CacheSensitive,
}

/// Reference values from Table II of the paper, kept alongside each
/// benchmark for reporting and shape checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Register-file utilization (fraction).
    pub reg: f64,
    /// Shared-memory utilization (fraction).
    pub shm: f64,
    /// ALU pipeline utilization (fraction).
    pub alu: f64,
    /// SFU pipeline utilization (fraction).
    pub sfu: f64,
    /// LSU pipeline utilization (fraction).
    pub ls: f64,
    /// L2 misses per kilo warp instructions.
    pub l2_mpki: f64,
}

/// A written-down suppression of one static-analyzer rule for one
/// benchmark.
///
/// The `ws-analyze` verifier fails the gate on any diagnostic; a benchmark
/// that intentionally violates a rule carries a waiver *with a
/// justification*. An empty justification is itself a verifier error, so
/// waivers cannot silently accumulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiver {
    /// The analyzer rule identifier being waived (e.g. `"class-traffic"`).
    pub rule: &'static str,
    /// Why the violation is intentional. Must be non-empty.
    pub justification: &'static str,
}

/// One suite benchmark: descriptor plus classification metadata.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Table II abbreviation (BLK, BFS, ...).
    pub abbrev: &'static str,
    /// Full benchmark name.
    pub full_name: &'static str,
    /// The kernel the simulator executes.
    pub desc: KernelDesc,
    /// Compute/Memory/Cache class.
    pub class: WorkloadClass,
    /// Fig. 3a scaling archetype.
    pub archetype: ScalingArchetype,
    /// The paper's Table II row, for side-by-side reporting.
    pub paper: PaperRow,
    /// Static-analyzer rule suppressions, each with a written justification
    /// (see [`Waiver`]).
    pub waivers: &'static [Waiver],
}

impl Benchmark {
    /// Maximum CTAs per SM under the baseline configuration.
    #[must_use]
    pub fn max_ctas_baseline(&self) -> u32 {
        self.desc.max_ctas_per_sm(&GpuConfig::isca_baseline().sm)
    }
}

fn program(
    seed: u64,
    sfu: f64,
    gload: f64,
    gstore: f64,
    shmem: f64,
    dep: usize,
) -> gpu_sim::Program {
    program_with_barriers(seed, sfu, gload, gstore, shmem, 0.0, dep)
}

/// Tiled kernels (`DXT`, `HOT`, `MM`) synchronize between loading a tile
/// into shared memory and consuming it.
#[allow(clippy::too_many_arguments)]
fn program_with_barriers(
    seed: u64,
    sfu: f64,
    gload: f64,
    gstore: f64,
    shmem: f64,
    barrier: f64,
    dep: usize,
) -> gpu_sim::Program {
    ProgramSpec {
        body_len: 100,
        sfu_frac: sfu,
        gload_frac: gload,
        gstore_frac: gstore,
        shmem_frac: shmem,
        barrier_frac: barrier,
        dep_distance: dep,
        seed,
    }
    .generate()
}

/// Blackscholes: streaming memory-intensive with heavy SFU (exp/log) use.
#[must_use]
pub fn blk() -> Benchmark {
    Benchmark {
        abbrev: "BLK",
        full_name: "Blackscholes",
        desc: KernelDesc {
            name: "BLK".into(),
            grid_ctas: 4800,
            threads_per_cta: 128,
            regs_per_thread: 30,
            shmem_per_cta: 0,
            program: program(101, 0.15, 0.15, 0.05, 0.0, 8),
            iterations: 2,
            pattern: AccessPattern::Streaming { transactions: 1 },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 11,
        },
        class: WorkloadClass::Memory,
        archetype: ScalingArchetype::MemorySaturating,
        paper: PaperRow {
            reg: 0.95,
            shm: 0.0,
            alu: 0.48,
            sfu: 0.73,
            ls: 0.84,
            l2_mpki: 51.3,
        },
        waivers: &[],
    }
}

/// Breadth-first search: irregular, divergent, memory-intensive.
#[must_use]
pub fn bfs() -> Benchmark {
    Benchmark {
        abbrev: "BFS",
        full_name: "Breadth First Search",
        desc: KernelDesc {
            name: "BFS".into(),
            grid_ctas: 19540,
            threads_per_cta: 512,
            regs_per_thread: 15,
            shmem_per_cta: 0,
            program: program(102, 0.02, 0.08, 0.03, 0.0, 3),
            iterations: 1,
            pattern: AccessPattern::Random {
                footprint_lines: 12_288,
                transactions: 2,
            },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 12,
        },
        class: WorkloadClass::Memory,
        archetype: ScalingArchetype::MemorySaturating,
        paper: PaperRow {
            reg: 0.71,
            shm: 0.0,
            alu: 0.14,
            sfu: 0.06,
            ls: 0.46,
            l2_mpki: 84.4,
        },
        waivers: &[],
    }
}

/// DXT compression: compute-intensive with a fetch-bound front end.
#[must_use]
pub fn dxt() -> Benchmark {
    Benchmark {
        abbrev: "DXT",
        full_name: "DXT Compression",
        desc: KernelDesc {
            name: "DXT".into(),
            grid_ctas: 107_520,
            threads_per_cta: 64,
            regs_per_thread: 36,
            shmem_per_cta: 2 * 1024,
            program: program_with_barriers(103, 0.10, 0.06, 0.02, 0.25, 0.02, 8),
            iterations: 8,
            pattern: AccessPattern::Tiled {
                tile_lines: 2,
                reuse: 32,
                transactions: 1,
            },
            icache_miss_rate: 0.15,
            shmem_conflict_degree: 1,
            seed: 13,
        },
        class: WorkloadClass::Compute,
        archetype: ScalingArchetype::ComputeSaturating,
        paper: PaperRow {
            reg: 0.56,
            shm: 0.33,
            alu: 0.47,
            sfu: 0.11,
            ls: 0.21,
            l2_mpki: 0.03,
        },
        waivers: &[],
    }
}

/// Hotspot: compute-intensive, non-saturating (keeps scaling with CTAs).
#[must_use]
pub fn hot() -> Benchmark {
    Benchmark {
        abbrev: "HOT",
        full_name: "Hotspot",
        desc: KernelDesc {
            name: "HOT".into(),
            grid_ctas: 73_960,
            threads_per_cta: 256,
            regs_per_thread: 18,
            shmem_per_cta: 1536,
            program: program_with_barriers(104, 0.06, 0.04, 0.02, 0.40, 0.02, 1),
            iterations: 3,
            pattern: AccessPattern::Tiled {
                tile_lines: 2,
                reuse: 16,
                transactions: 1,
            },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 14,
        },
        class: WorkloadClass::Compute,
        archetype: ScalingArchetype::ComputeNonSaturating,
        paper: PaperRow {
            reg: 0.84,
            shm: 0.19,
            alu: 0.41,
            sfu: 0.22,
            ls: 0.75,
            l2_mpki: 5.8,
        },
        waivers: &[],
    }
}

/// Image denoising: ALU-dominated with a short dependence chain, so it
/// saturates once enough warps hide the ALU latency.
#[must_use]
pub fn img() -> Benchmark {
    Benchmark {
        abbrev: "IMG",
        full_name: "Image Denoising",
        desc: KernelDesc {
            name: "IMG".into(),
            grid_ctas: 20_400,
            threads_per_cta: 64,
            regs_per_thread: 28,
            shmem_per_cta: 0,
            program: program(105, 0.12, 0.05, 0.01, 0.0, 2),
            iterations: 6,
            pattern: AccessPattern::Tiled {
                tile_lines: 2,
                reuse: 32,
                transactions: 1,
            },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 15,
        },
        class: WorkloadClass::Compute,
        archetype: ScalingArchetype::ComputeSaturating,
        paper: PaperRow {
            reg: 0.43,
            shm: 0.0,
            alu: 0.81,
            sfu: 0.30,
            ls: 0.11,
            l2_mpki: 0.3,
        },
        waivers: &[],
    }
}

/// K-nearest neighbour: irregular memory-intensive.
#[must_use]
pub fn knn() -> Benchmark {
    Benchmark {
        abbrev: "KNN",
        full_name: "K-Nearest Neighbor",
        desc: KernelDesc {
            name: "KNN".into(),
            grid_ctas: 26_730,
            threads_per_cta: 256,
            regs_per_thread: 8,
            shmem_per_cta: 0,
            program: program(106, 0.10, 0.10, 0.03, 0.0, 4),
            iterations: 1,
            pattern: AccessPattern::Random {
                footprint_lines: 65_536,
                transactions: 2,
            },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 16,
        },
        class: WorkloadClass::Memory,
        archetype: ScalingArchetype::MemorySaturating,
        paper: PaperRow {
            reg: 0.37,
            shm: 0.0,
            alu: 0.14,
            sfu: 0.26,
            ls: 0.42,
            l2_mpki: 100.0,
        },
        waivers: &[],
    }
}

/// Lattice-Boltzmann: the most extreme streaming memory benchmark.
#[must_use]
pub fn lbm() -> Benchmark {
    Benchmark {
        abbrev: "LBM",
        full_name: "Lattice-Boltzmann",
        desc: KernelDesc {
            name: "LBM".into(),
            grid_ctas: 180_000,
            threads_per_cta: 120,
            regs_per_thread: 34,
            shmem_per_cta: 0,
            program: program(107, 0.01, 0.38, 0.19, 0.0, 4),
            iterations: 1,
            pattern: AccessPattern::Streaming { transactions: 1 },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 17,
        },
        class: WorkloadClass::Memory,
        archetype: ScalingArchetype::MemorySaturating,
        paper: PaperRow {
            reg: 0.98,
            shm: 0.0,
            alu: 0.07,
            sfu: 0.01,
            ls: 1.0,
            l2_mpki: 166.6,
        },
        waivers: &[],
    }
}

/// Matrix multiply: tiled compute kernel with shared-memory blocking.
#[must_use]
pub fn mm() -> Benchmark {
    Benchmark {
        abbrev: "MM",
        full_name: "Matrix Multiply",
        desc: KernelDesc {
            name: "MM".into(),
            grid_ctas: 5280,
            threads_per_cta: 128,
            regs_per_thread: 28,
            shmem_per_cta: 304,
            program: program_with_barriers(108, 0.01, 0.10, 0.03, 0.30, 0.02, 4),
            iterations: 4,
            pattern: AccessPattern::Tiled {
                tile_lines: 2,
                reuse: 32,
                transactions: 1,
            },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 18,
        },
        class: WorkloadClass::Compute,
        archetype: ScalingArchetype::ComputeSaturating,
        paper: PaperRow {
            reg: 0.86,
            shm: 0.05,
            alu: 0.52,
            sfu: 0.01,
            ls: 0.34,
            l2_mpki: 1.7,
        },
        waivers: &[],
    }
}

/// Matrix-vector product: streams matrix rows (L1/L2 misses) while reusing
/// the vector (L1-resident until co-resident CTAs thrash it).
#[must_use]
pub fn mvp() -> Benchmark {
    Benchmark {
        abbrev: "MVP",
        full_name: "Matrix Vector Product",
        desc: KernelDesc {
            name: "MVP".into(),
            grid_ctas: 7650,
            threads_per_cta: 192,
            regs_per_thread: 16,
            shmem_per_cta: 0,
            program: program(109, 0.04, 0.45, 0.02, 0.0, 4),
            iterations: 1,
            pattern: AccessPattern::HotCold {
                hot_lines: 40,
                hot_frac: 0.65,
                transactions: 1,
            },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 19,
        },
        class: WorkloadClass::Cache,
        archetype: ScalingArchetype::CacheSensitive,
        paper: PaperRow {
            reg: 0.74,
            shm: 0.0,
            alu: 0.09,
            sfu: 0.07,
            ls: 0.96,
            l2_mpki: 89.7,
        },
        waivers: &[],
    }
}

/// Neural network: reuses a small weight set (L1/L2-resident) plus small
/// per-CTA activations; sensitive to L1 capacity but low MPKI.
#[must_use]
pub fn nn() -> Benchmark {
    Benchmark {
        abbrev: "NN",
        full_name: "Neural Network",
        desc: KernelDesc {
            name: "NN".into(),
            grid_ctas: 540_000,
            threads_per_cta: 169,
            regs_per_thread: 23,
            shmem_per_cta: 0,
            program: program(110, 0.10, 0.30, 0.05, 0.0, 6),
            iterations: 2,
            pattern: AccessPattern::BoundedFootprint {
                private_lines: 16,
                shared_lines: 48,
                shared_frac: 0.6,
                transactions: 1,
            },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 20,
        },
        class: WorkloadClass::Cache,
        archetype: ScalingArchetype::CacheSensitive,
        paper: PaperRow {
            reg: 0.94,
            shm: 0.0,
            alu: 0.43,
            sfu: 0.22,
            ls: 0.89,
            l2_mpki: 3.7,
        },
        waivers: &[],
    }
}

/// MUMmerGPU genome alignment: irregular suffix-tree traversal with highly
/// divergent memory accesses. It appears in the paper's Fig. 1 but not in
/// Table II (and is never paired), so it is *not* part of [`suite`]; use
/// [`extended_suite`] for Fig. 1. Its `paper` row is zeroed — the paper
/// reports no Table II entry for it.
#[must_use]
pub fn mum() -> Benchmark {
    Benchmark {
        abbrev: "MUM",
        full_name: "MUMmerGPU",
        desc: KernelDesc {
            name: "MUM".into(),
            grid_ctas: 7820,
            threads_per_cta: 256,
            regs_per_thread: 14,
            shmem_per_cta: 0,
            program: program(111, 0.02, 0.10, 0.02, 0.0, 3),
            iterations: 1,
            pattern: AccessPattern::Random {
                footprint_lines: 131_072,
                transactions: 4,
            },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 21,
        },
        class: WorkloadClass::Memory,
        archetype: ScalingArchetype::MemorySaturating,
        paper: PaperRow {
            reg: 0.0,
            shm: 0.0,
            alu: 0.0,
            sfu: 0.0,
            ls: 0.0,
            l2_mpki: 0.0,
        },
        waivers: &[],
    }
}

/// The full ten-benchmark suite, in Table II order.
#[must_use]
pub fn suite() -> Vec<Benchmark> {
    vec![
        blk(),
        bfs(),
        dxt(),
        hot(),
        img(),
        knn(),
        lbm(),
        mm(),
        mvp(),
        nn(),
    ]
}

/// The Fig. 1 benchmark set: the Table II suite plus MUM, in the figure's
/// order.
#[must_use]
pub fn extended_suite() -> Vec<Benchmark> {
    let mut v = suite();
    v.insert(9, mum()); // Fig. 1 lists MUM between MVP and NN
    v
}

/// Looks a benchmark up by its Table II abbreviation (case-insensitive);
/// also resolves `MUM` (Fig. 1 only).
#[must_use]
pub fn by_abbrev(abbrev: &str) -> Option<Benchmark> {
    extended_suite()
        .into_iter()
        .find(|b| b.abbrev.eq_ignore_ascii_case(abbrev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::OpClass;

    #[test]
    fn suite_has_ten_unique_benchmarks() {
        let s = suite();
        assert_eq!(s.len(), 10);
        let mut names: Vec<_> = s.iter().map(|b| b.abbrev).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn geometry_matches_table_ii() {
        // Grids are the paper's griddim x 10 so runs never exhaust their
        // input (the paper's own "large input size" principle); block
        // dimensions are exact.
        for (abbrev, grid, blk) in [
            ("BLK", 480, 128),
            ("BFS", 1954, 512),
            ("DXT", 10752, 64),
            ("HOT", 7396, 256),
            ("IMG", 2040, 64),
            ("KNN", 2673, 256),
            ("LBM", 18000, 120),
            ("MM", 528, 128),
            ("MVP", 765, 192),
            ("NN", 54000, 169),
        ] {
            let b = by_abbrev(abbrev).unwrap();
            assert_eq!(b.desc.grid_ctas, grid * 10, "{abbrev} griddim");
            assert_eq!(b.desc.threads_per_cta, blk, "{abbrev} blkdim");
        }
    }

    #[test]
    fn register_demand_tracks_paper_utilization() {
        // At max occupancy, register usage should be within 6 percentage
        // points of the paper's Table II utilization.
        let sm = GpuConfig::isca_baseline().sm;
        for b in suite() {
            let ctas = b.desc.max_ctas_per_sm(&sm);
            let used = f64::from(ctas * b.desc.regs_per_cta());
            let frac = used / f64::from(sm.max_registers);
            assert!(
                (frac - b.paper.reg).abs() < 0.06,
                "{}: modeled reg {frac:.2} vs paper {:.2}",
                b.abbrev,
                b.paper.reg
            );
        }
    }

    #[test]
    fn occupancy_limits_are_sensible() {
        for (abbrev, max_ctas) in [
            ("BLK", 8),
            ("BFS", 3),
            ("DXT", 8),
            ("HOT", 6),
            ("IMG", 8),
            ("KNN", 6),
            ("LBM", 8),
            ("MM", 8),
            ("MVP", 8),
            ("NN", 8),
        ] {
            let b = by_abbrev(abbrev).unwrap();
            assert_eq!(b.max_ctas_baseline(), max_ctas, "{abbrev} occupancy");
        }
    }

    #[test]
    fn classes_match_table_ii() {
        let memory = ["BLK", "BFS", "KNN", "LBM"];
        let compute = ["DXT", "HOT", "IMG", "MM"];
        let cache = ["MVP", "NN"];
        for m in memory {
            assert_eq!(by_abbrev(m).unwrap().class, WorkloadClass::Memory);
        }
        for c in compute {
            assert_eq!(by_abbrev(c).unwrap().class, WorkloadClass::Compute);
        }
        for c in cache {
            assert_eq!(by_abbrev(c).unwrap().class, WorkloadClass::Cache);
        }
    }

    #[test]
    fn memory_benchmarks_have_more_global_traffic_than_compute() {
        // Traffic = global-instruction fraction x transactions per access.
        let gmem = |b: &Benchmark| {
            (b.desc.program.fraction(OpClass::GlobalLoad)
                + b.desc.program.fraction(OpClass::GlobalStore))
                * f64::from(b.desc.pattern.transactions())
        };
        let min_mem = ["BLK", "BFS", "KNN", "LBM"]
            .iter()
            .map(|a| gmem(&by_abbrev(a).unwrap()))
            .fold(f64::INFINITY, f64::min);
        let max_compute = ["DXT", "HOT", "IMG", "MM"]
            .iter()
            .map(|a| gmem(&by_abbrev(a).unwrap()))
            .fold(0.0, f64::max);
        assert!(min_mem > max_compute);
    }

    #[test]
    fn lookup_is_case_insensitive_and_total() {
        assert!(by_abbrev("blk").is_some());
        assert!(by_abbrev("Nn").is_some());
        assert!(by_abbrev("XYZ").is_none());
    }

    #[test]
    fn all_benchmarks_have_distinct_seeds() {
        let mut seeds: Vec<u64> = extended_suite().iter().map(|b| b.desc.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 11);
    }

    #[test]
    fn extended_suite_adds_mum_for_fig1() {
        let ext = extended_suite();
        assert_eq!(ext.len(), 11);
        assert_eq!(ext[9].abbrev, "MUM");
        assert!(by_abbrev("MUM").is_some());
        assert!(!suite().iter().any(|b| b.abbrev == "MUM"));
    }

    #[test]
    fn tiled_kernels_carry_barriers() {
        for a in ["DXT", "HOT", "MM"] {
            let b = by_abbrev(a).unwrap();
            assert!(
                b.desc.program.fraction(OpClass::Barrier) > 0.0,
                "{a} should synchronize its tiles"
            );
        }
        assert_eq!(
            by_abbrev("BLK")
                .unwrap()
                .desc
                .program
                .fraction(OpClass::Barrier),
            0.0
        );
    }
}
