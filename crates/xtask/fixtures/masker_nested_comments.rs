//! Masker-regression fixture: nested block comments. Rust block comments
//! nest; the old masker matched the first `*/`, so the tail of a nested
//! comment was scanned as code and its contents produced phantom findings.
//! The lexer must consume each comment below as one token and still flag
//! the one genuine violation at the end of the file.

/* outer comment
   /* inner comment with Some(1).unwrap() and panic!("no") */
   still inside the outer comment: xs[i], m.keys(), Instant::now()
*/

/// A `*/` inside a string must not terminate a comment, and a `/*` inside
/// a string must not open one.
pub fn comment_like_strings() -> (&'static str, &'static str) {
    ("/* not a comment */", "*/ stray terminator")
}

/* one more /* doubly /* triply */ nested */ comment with .expect("x") */

/// Real code after every trap above must still be scanned: this is the one
/// genuine violation in the file.
pub fn after_comments() -> u8 {
    let v: Vec<u8> = Vec::new();
    v.first().copied().unwrap()
}
