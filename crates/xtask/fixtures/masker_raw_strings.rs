//! Masker-regression fixture: raw strings. The old line-masking pass
//! treated the `"` inside `r#"…"#` as a plain string delimiter, which
//! inverted its in-string state and masked (or unmasked) everything that
//! followed — hiding real violations or reporting phantom ones. The token
//! lexer must treat every payload below as a single string token and still
//! flag the one genuine violation at the end of the file.

/// Lookalike text inside raw strings must not be reported.
pub fn raw_string_payloads() -> (&'static str, &'static str, &'static [u8]) {
    let a = r#"calling .unwrap() or x[i] in a string is fine "quoted" too"#;
    let b = r##"nested hash: "# still inside, and .expect("boom") as well"##;
    let c = br#"byte raw string with .unwrap() inside"#;
    (a, b, c)
}

/// Multi-line raw string: the old masker lost its string state at the
/// first line break and scanned the remaining lines as code.
pub fn multiline() -> &'static str {
    r#"
    first line with Some(1).unwrap()
    second line with m.iter() and vec![0; 8]
    third line with Instant::now() and thread::spawn
    "#
}

/// Lifetimes and char literals share a sigil; `'\''` is a char, `'a` is a
/// lifetime, and neither opens a string.
pub fn lifetimes<'a>(x: &'a str) -> (char, &'a str) {
    ('\'', x)
}

/// Real code after every trap above must still be scanned: this is the one
/// genuine violation in the file.
pub fn after_raw_strings() -> Vec<u8> {
    std::fs::read("config").unwrap()
}
