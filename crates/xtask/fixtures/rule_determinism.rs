//! Golden fixture for `determinism` in the simulator core: unordered
//! container iteration, wall-clock reads, host-thread identity — plus the
//! waiver-justification contract.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

/// Positive: every host-state leak fires once.
pub fn positive(m: &HashMap<u32, u32>, s: &HashSet<u32>) -> u32 {
    let mut sum: u32 = m.values().sum();
    for k in s.iter() {
        sum += *k;
    }
    let t0 = Instant::now();
    let _ = std::thread::current();
    let _ = std::time::SystemTime::now();
    sum + t0.elapsed().subsec_nanos()
}

/// Negative: ordered containers iterate deterministically.
pub fn negative(b: &BTreeMap<u32, u32>) -> u32 {
    let mut sum = 0;
    for (_k, v) in b.iter() {
        sum += *v;
    }
    sum + b.values().sum::<u32>()
}

/// Waived with the required justification.
pub fn waived(w: &HashMap<u32, u32>) -> usize {
    // aggregate count only, order-insensitive; xtask-allow: determinism
    w.keys().count()
}

/// Waived WITHOUT a justification: the engine converts the finding instead
/// of silencing it.
pub fn waived_bare(u: &HashMap<u32, u32>) -> usize {
    // xtask-allow: determinism
    u.values().count()
}
