// Golden fixture for `module-docs`: this file deliberately carries no `//!`
// module documentation, so linting it yields exactly one finding at line 1.

pub fn item() {}
