//! Golden fixture for `no-float-eq`.

/// Positive: a float literal on either side, negated and in scientific
/// notation too (`1e-9` must lex as one float token, not `1e - 9`).
pub fn positive(x: f64) -> bool {
    let a = x == 0.5;
    let b = 1e-9 != x;
    let c = x == -0.25;
    a || b || c
}

/// Negative: integer comparisons and epsilon-based float comparison.
pub fn negative(x: f64, n: u32) -> bool {
    (x - 0.5).abs() < 1e-9 || n == 5 || n != 7
}

/// Waived.
pub fn waived(x: f64) -> bool {
    // exact sentinel propagated unchanged; xtask-allow: no-float-eq
    x == -1.0
}
