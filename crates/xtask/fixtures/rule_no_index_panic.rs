//! Golden fixture for `no-index-panic` on the verification path.

/// Positive: direct index expressions, on a binding and on a call result.
pub fn positive(xs: &[u32], i: usize) -> u32 {
    let a = xs[i];
    let b = xs.to_vec()[0];
    a + b
}

/// Negative: array literals, slice patterns, types, and checked access.
pub fn negative(xs: &[u32]) -> u32 {
    let arr = [1u32, 2, 3];
    let [first, ..] = arr;
    let sum: u32 = arr.iter().sum();
    first + sum + xs.first().copied().unwrap_or(0)
}

/// Waived.
pub fn waived(xs: &[u32]) -> u32 {
    // non-empty by caller contract; xtask-allow: no-index-panic
    xs[0]
}
