//! Golden fixture for `no-lossy-cast` in accounting-critical modules.

/// Positive: truncating integer and `f32` casts.
pub fn positive(cycles: u64, ipc: f64) -> (u32, f32) {
    let c = cycles as u32;
    let i = ipc as f32;
    (c, i)
}

/// Negative: widening into `f64` and lossless conversions are fine.
pub fn negative(ctas: u32) -> f64 {
    let exact = f64::from(ctas);
    exact + ctas as f64
}

/// Waived.
pub fn waived(warps: u64) -> u32 {
    // bounded by the per-SM warp limit (< 2^6); xtask-allow: no-lossy-cast
    warps as u32
}
