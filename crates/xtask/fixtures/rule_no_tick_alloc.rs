//! Golden fixture for the transitive `no-tick-alloc` rule: a seed entry
//! point (`Sm::tick`), a clean intermediate hop, an allocating leaf hit by
//! every widened pattern, a waived leaf, and an unreachable function whose
//! allocations are fine.

pub struct Sm {
    scratch: Vec<u32>,
}

impl Sm {
    /// Seed: the per-cycle entry point.
    pub fn tick(&mut self) {
        self.issue_stage();
    }

    /// Clean intermediate hop: reusing a member buffer is allowed.
    fn issue_stage(&mut self) {
        self.scratch.clear();
        self.leaf();
        self.waived_leaf();
    }

    /// Allocating leaf: every pattern fires, each with the full chain.
    fn leaf(&mut self) {
        let a: Vec<u32> = Vec::new();
        let b = vec![0u32; 4];
        let c: Vec<u32> = Vec::with_capacity(8);
        let d = Box::new(1u32);
        let e: Vec<u32> = b.iter().copied().collect();
        let f = e.to_vec();
        let g = format!("{}", f.len());
        let h = String::from("x");
        self.scratch.extend(a);
        let _ = (c, d, g, h);
    }

    /// Waived: a justified allocation on the tick path.
    fn waived_leaf(&mut self) {
        // grown once on first use, then reused; xtask-allow: no-tick-alloc
        self.scratch = Vec::with_capacity(64);
    }

    /// Not reachable from a seed: allocating here is fine.
    pub fn setup(&mut self) {
        self.scratch = Vec::with_capacity(64);
    }
}
