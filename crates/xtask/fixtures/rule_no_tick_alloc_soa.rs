//! Golden fixture for the transitive `no-tick-alloc` rule over the SoA
//! scoreboard surface: the batched fill entry point (`Sm::on_fill_batch`)
//! seeds the walk, a clean mask-refresh hop stays on the path, an
//! allocating leaf below it is caught, and a helper only reachable from
//! launch-time code may allocate freely.

pub struct Sm {
    touched: u64,
    staged: Vec<u64>,
}

impl Sm {
    /// Seed: the batched per-cycle fill entry point.
    pub fn on_fill_batch(&mut self, lines: &[u64]) {
        for &line in lines {
            self.touched |= 1 << (line & 63);
        }
        let mut m = self.touched;
        while m != 0 {
            let slot = m.trailing_zeros() as usize;
            m &= m - 1;
            self.refresh_warp(slot);
        }
    }

    /// Clean intermediate hop: mask updates and buffer reuse are allowed.
    fn refresh_warp(&mut self, slot: usize) {
        self.staged.clear();
        self.touched &= !(1 << slot);
        self.rebuild_entry(slot);
    }

    /// Allocating leaf under the batched-fill path: caught transitively.
    fn rebuild_entry(&mut self, slot: usize) {
        let fresh: Vec<u64> = Vec::new();
        let row = vec![slot as u64; 4];
        self.staged = row.iter().copied().collect();
        self.staged.extend(fresh);
    }

    /// Not reachable from a seed: launch-time allocation is fine.
    pub fn build_table(&mut self, n_slots: usize) {
        self.staged = Vec::with_capacity(n_slots);
    }
}
