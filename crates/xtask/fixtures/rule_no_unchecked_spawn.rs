//! Golden fixture for `no-unchecked-spawn` in the execution layer.

/// Positive: raw spawns and two flavours of discarded join handle.
pub fn positive() {
    let h = std::thread::spawn(|| ());
    let _ = h.join();
    let h2 = std::thread::spawn(|| ());
    h2.join().ok();
}

/// Positive: discarded builder spawns and swallowed completion receives.
pub fn positive_discards(rx: &std::sync::mpsc::Receiver<u32>) {
    let _ = std::thread::Builder::new().spawn(|| ());
    std::thread::Builder::new().spawn(|| ()).ok();
    rx.recv().ok();
    let _ = rx.try_recv();
}

/// Negative: scoped workers; scope exit propagates worker panics.
pub fn negative() -> i32 {
    std::thread::scope(|s| {
        let h = s.spawn(|| 1);
        h.join().unwrap_or(0)
    })
}

/// Negative: matched spawn/receive results, and the send side — a dropped
/// receiver is routine shutdown, so discarding a send is allowed.
pub fn negative_discards(
    tx: &std::sync::mpsc::Sender<u32>,
    rx: &std::sync::mpsc::Receiver<u32>,
) -> u32 {
    let _ = tx.send(1);
    match rx.recv() {
        Ok(v) => v,
        Err(_) => 0,
    }
}

/// Waived.
pub fn waived() {
    // detached watchdog by design; xtask-allow: no-unchecked-spawn
    std::thread::spawn(|| ());
}
