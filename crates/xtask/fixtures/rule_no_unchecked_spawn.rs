//! Golden fixture for `no-unchecked-spawn` in the execution layer.

/// Positive: raw spawns and two flavours of discarded join handle.
pub fn positive() {
    let h = std::thread::spawn(|| ());
    let _ = h.join();
    let h2 = std::thread::spawn(|| ());
    h2.join().ok();
}

/// Negative: scoped workers; scope exit propagates worker panics.
pub fn negative() -> i32 {
    std::thread::scope(|s| {
        let h = s.spawn(|| 1);
        h.join().unwrap_or(0)
    })
}

/// Waived.
pub fn waived() {
    // detached watchdog by design; xtask-allow: no-unchecked-spawn
    std::thread::spawn(|| ());
}
