//! Golden fixture for `no-unwrap`: positive, negative, and waived cases.

/// Positive: both panicking extractors fire.
pub fn positive() -> i32 {
    let a = Some(1).unwrap();
    let b = Some(2).expect("present");
    a + b
}

/// Negative: non-panicking variants and lookalike text are fine.
pub fn negative() -> usize {
    let a = None.unwrap_or(1);
    let b = Some(2).unwrap_or_else(|| 3);
    let c = Some(4).unwrap_or_default();
    // mentioning .unwrap() in a comment is fine
    let d = ".unwrap()".len();
    a + b + c + d
}

/// Waived: the allow comment suppresses the finding.
pub fn waived() -> i32 {
    // invariant: the fixture always holds a value; xtask-allow: no-unwrap
    Some(5).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
