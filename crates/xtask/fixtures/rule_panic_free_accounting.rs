//! Golden fixture for the transitive `panic-free-accounting` rule: a seed
//! metric (`speedups`), a reachable helper full of panic sources, a
//! reachable helper whose invariant checks are fine, a waived helper, and
//! an unreachable function that only the per-file `no-unwrap` rule sees.

/// Seed: accounting entry point.
pub fn speedups(xs: &[f64]) -> f64 {
    normalize(xs) + checked(xs) + clamped(xs)
}

/// Reachable helper: every panic source fires, with the chain reported.
fn normalize(xs: &[f64]) -> f64 {
    let first = *xs.first().unwrap();
    let second = *xs.get(1).expect("two samples");
    let third = xs[2];
    if xs.len() > 64 {
        panic!("too many samples");
    }
    first + second + third
}

/// Reachable helper: invariant checks are the point, not a violation.
fn checked(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "caller provides samples");
    debug_assert!(xs.len() < 64);
    xs.iter().sum()
}

/// Waived.
fn clamped(xs: &[f64]) -> f64 {
    // non-empty by construction; xtask-allow: panic-free-accounting, no-unwrap
    *xs.first().unwrap()
}

/// Not reachable from an accounting seed: only the per-file `no-unwrap`
/// rule fires here, without a chain.
pub fn debug_dump(xs: &[f64]) -> f64 {
    *xs.last().unwrap()
}
