//! Golden fixture for the `panic-free-accounting` rule over the ws-predict
//! analyzer: the `predict_kernel` seed reaches a helper exercising the
//! widened `todo!` / `unimplemented!` / `unreachable!` macro patterns, a
//! waived occurrence, an invariant-checking helper that stays clean, and a
//! function outside the seed's call tree that the rule must not flag.

/// Seed: predictor entry point.
pub fn predict_kernel(n: u32) -> f64 {
    curve_point(n) + clamp_point(n) + checked_point(n)
}

/// Reachable helper: every widened macro pattern fires, chain reported.
fn curve_point(n: u32) -> f64 {
    if n == 0 {
        todo!("sub-CTA occupancy");
    }
    if n > 64 {
        unimplemented!("beyond the occupancy bound");
    }
    match n % 2 {
        0 => 2.0,
        1 => 3.0,
        _ => unreachable!("n % 2 is 0 or 1"),
    }
}

/// Waived: the residue analysis is exhaustive by construction.
fn clamp_point(n: u32) -> f64 {
    match n.min(1) {
        0 => 0.5,
        1 => 1.5,
        // exhaustive by min(); xtask-allow: panic-free-accounting
        _ => unreachable!(),
    }
}

/// Reachable helper: invariant checks are the point, not a violation.
fn checked_point(n: u32) -> f64 {
    assert!(n <= 64, "caller clamps to the occupancy bound");
    debug_assert!(n > 0);
    f64::from(n)
}

/// Not reachable from a predictor seed: the transitive rule must not flag
/// this `todo!`, and no per-file rule matches bare macros.
pub fn future_mode() -> f64 {
    todo!("contention model v2")
}
