//! The workspace call graph and seed-based reachability.
//!
//! Nodes are the `fn` definitions [`crate::items::parse`] extracted from
//! every library source in the workspace; edges connect a function to the
//! definitions its call sites can name. Resolution is deliberately
//! *conservative* (an over-approximation): where the token stream cannot
//! prove which of several same-named definitions a call targets, edges go
//! to all of them, so "not reachable" is trustworthy even though
//! "reachable" may include extras. The rules that consume reachability
//! (`no-tick-alloc`, `panic-free-accounting`) treat extras as findings to
//! fix or waive — the safe direction for a gate.
//!
//! Resolution policy per call-site shape:
//!
//! * `Type::name(…)` — edges to definitions inside `impl Type` named
//!   `name` (with `Self` resolved to the caller's impl type). If no such
//!   impl exists the qualifier is a module path (`waterfill::water_fill`)
//!   or a foreign type (`Vec::new`): edges go to *free* functions named
//!   `name` only, never to unrelated methods.
//! * `.name(…)` — edges to every method (a definition taking `self`)
//!   named `name`.
//! * `name(…)` — edges to every free function named `name`.
//! * Macro invocations create no edges (the allocation rules match them
//!   textually at the call site instead).
//!
//! Definitions inside `#[cfg(test)]` regions are excluded from the index:
//! a test helper named `tick` must neither become tick-path nor pull the
//! tick rules into test code.
//!
//! [`CallGraph::reachable`] runs a BFS from seed functions and keeps the
//! parent of each first visit, so every diagnostic can print the concrete
//! call chain from a seed to the violation ([`Reachability::chain`]).

use std::collections::BTreeMap;

use crate::items::{FileItems, FnDef};

/// A node id: index into [`CallGraph::nodes`].
pub type NodeId = usize;

/// One graph node: a function definition in a file.
#[derive(Debug, Clone)]
pub struct Node {
    /// Index into the `files` slice the graph was built from.
    pub file: usize,
    /// Index into that file's `fns`.
    pub fn_idx: usize,
    /// Cached qualified name (`Sm::tick` or `water_fill`).
    pub qualified: String,
    /// 1-based line of the definition (kept for future diagnostics).
    #[allow(dead_code)]
    pub line: u32,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// All non-test function definitions, in (file, fn) order.
    pub nodes: Vec<Node>,
    /// Adjacency: resolved callee node ids per node, sorted + deduped.
    pub edges: Vec<Vec<NodeId>>,
}

/// Result of a seeded BFS: for each node, `None` if unreached, or
/// `Some(parent)` (`parent == usize::MAX` marks a seed root).
#[derive(Debug)]
pub struct Reachability {
    parents: Vec<Option<NodeId>>,
}

/// Sentinel parent for seed roots.
const ROOT: NodeId = usize::MAX;

impl CallGraph {
    /// Builds the graph over `files` (path label, parsed items) pairs.
    #[must_use]
    pub fn build(files: &[(String, FileItems)]) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, (_, items)) in files.iter().enumerate() {
            for (xi, f) in items.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                nodes.push(Node {
                    file: fi,
                    fn_idx: xi,
                    qualified: f.qualified(),
                    line: f.line,
                });
            }
        }
        // Name indices over non-test definitions.
        let mut methods: BTreeMap<&str, Vec<NodeId>> = BTreeMap::new();
        let mut free_fns: BTreeMap<&str, Vec<NodeId>> = BTreeMap::new();
        let mut by_impl: BTreeMap<(&str, &str), Vec<NodeId>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            let Some(f) = fn_of(files, n) else { continue };
            if f.is_method {
                methods.entry(f.name.as_str()).or_default().push(id);
            }
            match &f.impl_type {
                Some(t) => by_impl
                    .entry((t.as_str(), f.name.as_str()))
                    .or_default()
                    .push(id),
                None => free_fns.entry(f.name.as_str()).or_default().push(id),
            }
        }
        let mut edges: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        for (id, n) in nodes.iter().enumerate() {
            let Some(f) = fn_of(files, n) else { continue };
            for c in &f.calls {
                if c.is_macro {
                    continue;
                }
                let name = c.name();
                let targets: Option<&Vec<NodeId>> = if c.is_method {
                    methods.get(name)
                } else if c.path.contains("::") {
                    let qual = c
                        .path
                        .rsplit("::")
                        .nth(1)
                        .map(|q| {
                            if q == "Self" {
                                f.impl_type.as_deref().unwrap_or(q)
                            } else {
                                q
                            }
                        })
                        .unwrap_or("");
                    match by_impl.get(&(qual, name)) {
                        Some(v) => Some(v),
                        // Module-qualified free-fn call (`waterfill::water_fill`)
                        // or a foreign type: free functions only.
                        None => free_fns.get(name),
                    }
                } else {
                    free_fns.get(name)
                };
                if let Some(ts) = targets {
                    edges[id].extend(ts.iter().copied());
                }
            }
            edges[id].sort_unstable();
            edges[id].dedup();
        }
        CallGraph { nodes, edges }
    }

    /// Node ids whose definition matches `(impl type, name)`; a `None`
    /// type matches free functions.
    #[must_use]
    pub fn find(&self, files: &[(String, FileItems)], ty: Option<&str>, name: &str) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                fn_of(files, n).is_some_and(|f| f.name == name && f.impl_type.as_deref() == ty)
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// BFS from `seeds` (node ids), recording first-visit parents.
    #[must_use]
    pub fn reachable(&self, seeds: &[NodeId]) -> Reachability {
        let mut parents: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &s in seeds {
            if let Some(p) = parents.get_mut(s) {
                if p.is_none() {
                    *p = Some(ROOT);
                    queue.push_back(s);
                }
            }
        }
        while let Some(id) = queue.pop_front() {
            for &next in &self.edges[id] {
                if parents[next].is_none() {
                    parents[next] = Some(id);
                    queue.push_back(next);
                }
            }
        }
        Reachability { parents }
    }
}

/// The `FnDef` behind a node.
fn fn_of<'a>(files: &'a [(String, FileItems)], n: &Node) -> Option<&'a FnDef> {
    files
        .get(n.file)
        .and_then(|(_, items)| items.fns.get(n.fn_idx))
}

impl Reachability {
    /// Whether `id` was reached.
    #[must_use]
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn contains(&self, id: NodeId) -> bool {
        self.parents.get(id).copied().flatten().is_some()
    }

    /// Every reached node id, ascending.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.parents
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .map(|(id, _)| id)
    }

    /// The shortest recorded call chain from a seed to `id`, rendered as
    /// qualified names (`["Gpu::tick", "Sm::tick", "helper"]`).
    #[must_use]
    pub fn chain(&self, graph: &CallGraph, id: NodeId) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let Some(node) = graph.nodes.get(c) else {
                break;
            };
            out.push(node.qualified.clone());
            cur = match self.parents.get(c).copied().flatten() {
                Some(ROOT) | None => None,
                Some(p) => Some(p),
            };
            if out.len() > graph.nodes.len() {
                break; // cycle guard; parents should be acyclic
            }
        }
        out.reverse();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse;

    fn graph_of(srcs: &[(&str, &str)]) -> (Vec<(String, FileItems)>, CallGraph) {
        let files: Vec<(String, FileItems)> = srcs
            .iter()
            .map(|(p, s)| ((*p).to_string(), parse(s)))
            .collect();
        let g = CallGraph::build(&files);
        (files, g)
    }

    #[test]
    fn transitive_reachability_with_chain() {
        let (files, g) = graph_of(&[(
            "a.rs",
            "impl Sm {\n    pub fn tick(&mut self) { self.fetch(); }\n    fn fetch(&mut self) { helper(); }\n}\nfn helper() { leaf(); }\nfn leaf() {}\nfn unrelated() {}\n",
        )]);
        let seeds = g.find(&files, Some("Sm"), "tick");
        assert_eq!(seeds.len(), 1);
        let r = g.reachable(&seeds);
        let leaf = g.find(&files, None, "leaf")[0];
        assert!(r.contains(leaf));
        assert_eq!(
            r.chain(&g, leaf),
            ["Sm::tick", "Sm::fetch", "helper", "leaf"]
        );
        let unrelated = g.find(&files, None, "unrelated")[0];
        assert!(!r.contains(unrelated));
    }

    #[test]
    fn method_calls_fan_out_to_all_same_named_methods() {
        let (files, g) = graph_of(&[(
            "a.rs",
            "impl Gpu {\n    pub fn tick(&mut self) { self.sm.tick(); }\n}\nimpl Sm {\n    pub fn tick(&mut self) {}\n}\n",
        )]);
        let seeds = g.find(&files, Some("Gpu"), "tick");
        let r = g.reachable(&seeds);
        let sm_tick = g.find(&files, Some("Sm"), "tick")[0];
        assert!(r.contains(sm_tick));
    }

    #[test]
    fn qualified_calls_do_not_leak_to_unrelated_methods() {
        let (files, g) = graph_of(&[(
            "a.rs",
            "impl A {\n    pub fn entry(&self) { let v: Vec<u32> = Vec::new(); drop(v); }\n}\nimpl B {\n    pub fn new() -> B { B }\n}\n",
        )]);
        let seeds = g.find(&files, Some("A"), "entry");
        let r = g.reachable(&seeds);
        let b_new = g.find(&files, Some("B"), "new")[0];
        assert!(!r.contains(b_new), "Vec::new must not resolve to B::new");
    }

    #[test]
    fn self_calls_resolve_to_the_impl_type() {
        let (files, g) = graph_of(&[(
            "a.rs",
            "impl A {\n    pub fn entry(&self) { Self::assoc(); }\n    fn assoc() {}\n}\nimpl B {\n    fn assoc() {}\n}\n",
        )]);
        let r = g.reachable(&g.find(&files, Some("A"), "entry"));
        assert!(r.contains(g.find(&files, Some("A"), "assoc")[0]));
        assert!(!r.contains(g.find(&files, Some("B"), "assoc")[0]));
    }

    #[test]
    fn test_definitions_are_not_nodes() {
        let (files, g) = graph_of(&[(
            "a.rs",
            "fn entry() { helper(); }\nfn helper() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { super::entry(); }\n}\n",
        )]);
        assert_eq!(
            g.find(&files, None, "helper").len(),
            1,
            "test helper excluded"
        );
        let r = g.reachable(&g.find(&files, None, "entry"));
        assert_eq!(r.iter().count(), 2);
    }

    #[test]
    fn module_qualified_free_fn_calls_resolve() {
        let (files, g) = graph_of(&[
            ("a.rs", "fn entry() { waterfill::water_fill(); }\n"),
            ("b.rs", "pub fn water_fill() {}\n"),
        ]);
        let r = g.reachable(&g.find(&files, None, "entry"));
        assert!(r.contains(g.find(&files, None, "water_fill")[0]));
    }

    #[test]
    fn cross_file_edges_connect() {
        let (files, g) = graph_of(&[
            ("gpu.rs", "impl Gpu {\n    pub fn tick(&mut self) { self.mem.tick(0); self.sms.iter_mut().for_each(|s| s.tick()); }\n}\n"),
            ("sm.rs", "impl Sm {\n    pub fn tick(&mut self) { self.classify_stall(); }\n    fn classify_stall(&self) {}\n}\n"),
            ("mem.rs", "impl MemSubsystem {\n    pub fn tick(&mut self, now: u64) {}\n}\n"),
        ]);
        let r = g.reachable(&g.find(&files, Some("Gpu"), "tick"));
        assert!(r.contains(g.find(&files, Some("Sm"), "classify_stall")[0]));
        assert!(r.contains(g.find(&files, Some("MemSubsystem"), "tick")[0]));
    }
}
