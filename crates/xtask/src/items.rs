//! A lightweight item parser over the token stream.
//!
//! [`parse`] extracts from one source file what the lint rules and the
//! workspace call graph need — without building a full AST:
//!
//! * every `fn` definition, with its enclosing `impl` type (so
//!   `Sm::tick` and `Gpu::tick` are distinct graph nodes), whether it
//!   takes `self`, and whether it lives inside a `#[cfg(test)]` region;
//! * every call site inside each function body: plain/path calls
//!   (`helper(…)`, `Vec::new(…)`, `Self::f(…)`), method calls
//!   (`.collect()`, turbofish included), and macro invocations
//!   (`vec![…]`, `format!(…)`);
//! * `for … in …` loop headers (the `determinism` rule checks what they
//!   iterate over);
//! * identifiers declared with a `HashMap` / `HashSet` type or
//!   initializer (the iteration-order hazard set);
//! * `xtask-allow` waiver directives with their justification text;
//! * `#[cfg(test)]` line regions and the module-doc status.
//!
//! The parser is a single linear pass with explicit stacks for `impl`
//! blocks and nested functions: call sites inside a nested `fn` belong to
//! the nested function, while call sites inside closures belong to the
//! enclosing function — exactly the attribution transitive reachability
//! wants. Like the lexer it is total: any input produces a best-effort
//! item table, never a panic.

use std::collections::BTreeSet;

use crate::lex::{lex, Token, TokenKind};

/// Keywords that look like a call when followed by `(` but are not.
const CALL_KEYWORDS: [&str; 24] = [
    "if", "while", "match", "return", "for", "in", "loop", "as", "move", "ref", "let", "else",
    "break", "continue", "where", "fn", "impl", "use", "mod", "pub", "unsafe", "dyn", "box",
    "self",
];

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee path as written: `"helper"`, `"Vec::new"`, `"Self::f"`, a
    /// bare method name for method calls, or `"vec!"` for macros.
    pub path: String,
    /// For method calls: the nearest receiver identifier (`m` for
    /// `m.iter()` and `self.m[k].iter()`), when one is syntactically
    /// evident.
    pub recv: Option<String>,
    /// Whether this is a `.name(…)` method call.
    pub is_method: bool,
    /// Whether this is a `name!(…)` macro invocation.
    pub is_macro: bool,
    /// 1-based source line.
    pub line: u32,
}

impl CallSite {
    /// Last path segment (`new` for `Vec::new`), macro `!` kept.
    #[must_use]
    pub fn name(&self) -> &str {
        self.path.rsplit("::").next().unwrap_or(&self.path)
    }
}

/// One `fn` definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name as written (raw-identifier prefix stripped).
    pub name: String,
    /// Enclosing `impl` target type, when inside an impl block.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the parameter list mentions `self`.
    pub is_method: bool,
    /// Whether the definition sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Call sites in the body (closures included, nested fns excluded).
    pub calls: Vec<CallSite>,
    /// Inclusive line span of the body braces; `None` for declarations.
    pub body_lines: Option<(u32, u32)>,
}

impl FnDef {
    /// `Type::name` when inside an impl block, else just `name`.
    #[must_use]
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `for pat in expr { … }` loop header.
#[derive(Debug, Clone)]
pub struct ForLoop {
    /// Identifiers mentioned in the iterated expression.
    pub expr_idents: Vec<String>,
    /// 1-based line of the `for` keyword.
    pub line: u32,
    /// Whether the loop is inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One `xtask-allow` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the directive's comment starts on.
    pub line: u32,
    /// Rule names listed after `xtask-allow:`.
    pub rules: Vec<String>,
    /// Justification: text after ` -- ` in the directive, or the comment
    /// text preceding `xtask-allow:` when non-empty.
    pub justification: Option<String>,
}

/// Everything the lint rules need from one file.
#[derive(Debug)]
pub struct FileItems {
    /// The full token stream (spans tile the source).
    pub tokens: Vec<Token>,
    /// Indices of significant (non-whitespace, non-comment) tokens.
    pub sig: Vec<usize>,
    /// Every function definition, in source order.
    pub fns: Vec<FnDef>,
    /// Every `for` loop header inside a function body.
    pub for_loops: Vec<ForLoop>,
    /// Waiver directives.
    pub allows: Vec<Allow>,
    /// Inclusive 1-based line ranges covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(u32, u32)>,
    /// Identifiers declared with a `HashMap`/`HashSet` type or initializer.
    pub hash_idents: BTreeSet<String>,
    /// Whether `//!`/`/*!` module docs appear before the first item.
    pub has_module_docs: bool,
}

impl FileItems {
    /// Whether `line` lies inside a `#[cfg(test)]` region.
    #[must_use]
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// The waiver covering `line` (same line or the line above) that names
    /// `rule`, if any.
    #[must_use]
    pub fn allow_for(&self, line: u32, rule: &str) -> Option<&Allow> {
        self.allows
            .iter()
            .find(|a| (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == rule))
    }
}

/// Parses one file. Total: never panics, best-effort on malformed input.
#[must_use]
pub fn parse(src: &str) -> FileItems {
    let tokens = lex(src);
    let sig: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .map(|(i, _)| i)
        .collect();
    let allows = collect_allows(src, &tokens);
    let has_module_docs = module_docs_present(src, &tokens);
    let mut p = Parser {
        src,
        tokens: &tokens,
        sig: &sig,
        fns: Vec::new(),
        for_loops: Vec::new(),
        test_ranges: Vec::new(),
        hash_idents: BTreeSet::new(),
    };
    p.run();
    FileItems {
        fns: p.fns,
        for_loops: p.for_loops,
        test_ranges: p.test_ranges,
        hash_idents: p.hash_idents,
        tokens,
        sig,
        allows,
        has_module_docs,
    }
}

/// Extracts `xtask-allow` directives from comment tokens.
fn collect_allows(src: &str, tokens: &[Token]) -> Vec<Allow> {
    let mut out = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = t.text(src);
        let Some(pos) = text.find("xtask-allow:") else {
            continue;
        };
        let after = &text[pos + "xtask-allow:".len()..];
        let (list, trailing) = match after.find("--") {
            Some(d) => (&after[..d], after[d + 2..].trim()),
            None => (after, ""),
        };
        let rules: Vec<String> = list
            .trim_end_matches("*/")
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty() && r.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'))
            .collect();
        // Justification: explicit ` -- reason`, or the comment text before
        // the directive (the repo's "justification first" convention).
        let leading = text[..pos]
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start_matches('!')
            .trim()
            .trim_end_matches(';')
            .trim();
        let justification = if !trailing.is_empty() {
            Some(trailing.to_string())
        } else if !leading.is_empty() {
            Some(leading.to_string())
        } else {
            None
        };
        if !rules.is_empty() {
            out.push(Allow {
                line: t.line,
                rules,
                justification,
            });
        }
    }
    out
}

/// Whether inner module docs appear before the first real item. Inner
/// attributes (`#![…]`) may precede them.
fn module_docs_present(src: &str, tokens: &[Token]) -> bool {
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Whitespace => i += 1,
            TokenKind::LineComment if t.text(src).starts_with("//!") => return true,
            TokenKind::BlockComment if t.text(src).starts_with("/*!") => return true,
            TokenKind::LineComment | TokenKind::BlockComment => i += 1,
            TokenKind::Punct if t.text(src) == "#" => {
                // Skip an inner attribute `#![…]`.
                let mut j = i + 1;
                while j < tokens.len() && tokens[j].kind == TokenKind::Whitespace {
                    j += 1;
                }
                if tokens.get(j).map(|t| t.text(src)) != Some("!") {
                    return false;
                }
                let mut depth = 0i64;
                while j < tokens.len() {
                    match tokens[j].text(src) {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
            }
            _ => return false,
        }
    }
    false
}

/// The linear item-parsing pass.
struct Parser<'a> {
    src: &'a str,
    tokens: &'a [Token],
    sig: &'a [usize],
    fns: Vec<FnDef>,
    for_loops: Vec<ForLoop>,
    test_ranges: Vec<(u32, u32)>,
    hash_idents: BTreeSet<String>,
}

impl<'a> Parser<'a> {
    fn text(&self, s: usize) -> &'a str {
        self.sig
            .get(s)
            .and_then(|&i| self.tokens.get(i))
            .map_or("", |t| t.text(self.src))
    }

    fn kind(&self, s: usize) -> Option<TokenKind> {
        self.sig
            .get(s)
            .and_then(|&i| self.tokens.get(i))
            .map(|t| t.kind)
    }

    fn line(&self, s: usize) -> u32 {
        self.sig
            .get(s)
            .and_then(|&i| self.tokens.get(i))
            .map_or(0, |t| t.line)
    }

    fn run(&mut self) {
        let mut depth: i64 = 0;
        // (impl type, brace depth of the impl body when open).
        let mut impl_stack: Vec<(String, i64)> = Vec::new();
        let mut pending_impl: Option<String> = None;
        // (index into self.fns, brace depth of the body when open).
        let mut fn_stack: Vec<(usize, i64)> = Vec::new();
        let mut pending_fn: Option<usize> = None;
        // #[cfg(test)] region: set when the attribute is seen; the region
        // closes when depth returns to the recorded level (or at `;` for a
        // braceless item).
        let mut pending_test_line: Option<u32> = None;
        let mut test_open: Option<(u32, i64)> = None;

        // Paren/bracket nesting, so `;` inside `[u8; 2]` never terminates
        // an item and `{` inside an array-length expression is rare enough
        // to ignore.
        let mut paren: i64 = 0;
        let mut bracket: i64 = 0;

        let mut s = 0usize;
        while s < self.sig.len() {
            let text = self.text(s);
            let kind = self.kind(s).unwrap_or(TokenKind::Unknown);
            match (kind, text) {
                (TokenKind::Punct, "(") => paren += 1,
                (TokenKind::Punct, ")") => paren -= 1,
                (TokenKind::Punct, "[") => bracket += 1,
                (TokenKind::Punct, "]") => bracket -= 1,
                (TokenKind::Punct, "{") => {
                    depth += 1;
                    if let Some(ty) = pending_impl.take() {
                        impl_stack.push((ty, depth));
                    }
                    if let Some(fi) = pending_fn.take() {
                        fn_stack.push((fi, depth));
                    }
                    if let Some(line) = pending_test_line.take() {
                        test_open = Some((line, depth));
                    }
                }
                (TokenKind::Punct, "}") => {
                    if let Some(&(_, d)) = impl_stack.last() {
                        if d == depth {
                            impl_stack.pop();
                        }
                    }
                    if let Some(&(fi, d)) = fn_stack.last() {
                        if d == depth {
                            let close = self.line(s);
                            if let Some(f) = self.fns.get_mut(fi) {
                                let open = f.body_lines.map_or(close, |(a, _)| a);
                                f.body_lines = Some((open, close));
                            }
                            fn_stack.pop();
                        }
                    }
                    if let Some((start, d)) = test_open {
                        if d == depth {
                            self.test_ranges.push((start, self.line(s)));
                            test_open = None;
                        }
                    }
                    depth -= 1;
                }
                (TokenKind::Punct, ";") if test_open.is_none() && paren == 0 && bracket == 0 => {
                    // A braceless `#[cfg(test)] use …;` item.
                    if let Some(line) = pending_test_line.take() {
                        self.test_ranges.push((line, self.line(s)));
                    }
                }
                (TokenKind::Punct, "#") => {
                    if let Some(end) = self.scan_attribute(s) {
                        if self.attr_is_cfg_test(s, end) && test_open.is_none() {
                            pending_test_line = Some(self.line(s));
                        }
                        s = end; // skip the attribute body entirely
                    }
                }
                (TokenKind::Ident, "impl") => {
                    if let Some((ty, header_end)) = self.scan_impl_header(s) {
                        pending_impl = Some(ty);
                        s = header_end; // lands on the `{`, handled next loop
                        continue;
                    }
                }
                (TokenKind::Ident, "fn") if self.kind(s + 1) == Some(TokenKind::Ident) => {
                    let name = self.text(s + 1).trim_start_matches("r#").to_string();
                    let line = self.line(s);
                    let impl_type = impl_stack.last().map(|(t, _)| t.clone());
                    let (is_method, body_open) = self.scan_fn_signature(s + 2);
                    let in_test = test_open.is_some() || pending_test_line.is_some();
                    self.fns.push(FnDef {
                        name,
                        impl_type,
                        line,
                        is_method,
                        in_test,
                        calls: Vec::new(),
                        // Provisional; fixed up when the body closes.
                        body_lines: Some((line, line)),
                    });
                    if body_open.is_some() {
                        pending_fn = Some(self.fns.len() - 1);
                    } else if let Some(f) = self.fns.last_mut() {
                        f.body_lines = None; // trait-method declaration
                    }
                    s += 2; // continue from after the name; the `{` is found naturally
                    continue;
                }
                (TokenKind::Ident, "for") if !fn_stack.is_empty() && self.text(s + 1) != "<" => {
                    if let Some(fl) = self.scan_for_header(s, test_open.is_some()) {
                        self.for_loops.push(fl);
                    }
                }
                // Bindings inside #[cfg(test)] regions stay out of the
                // hazard set: a test-local `m: HashMap` must not flag a
                // lib-code `m: BTreeMap` with the same name.
                (TokenKind::Ident, "HashMap" | "HashSet")
                    if test_open.is_none() && pending_test_line.is_none() =>
                {
                    if let Some(name) = self.hash_binding_name(s) {
                        self.hash_idents.insert(name);
                    }
                }
                (TokenKind::Ident, _) if !fn_stack.is_empty() => {
                    if let Some(call) = self.scan_call(s) {
                        if let Some(&(fi, _)) = fn_stack.last() {
                            if let Some(f) = self.fns.get_mut(fi) {
                                f.calls.push(call);
                            }
                        }
                    }
                }
                _ => {}
            }
            s += 1;
        }
        if let Some((start, _)) = test_open {
            // Unclosed test region (malformed input): extend to EOF.
            let last = self.tokens.last().map_or(start, |t| t.line);
            self.test_ranges.push((start, last));
        }
    }

    /// From a `#` sig index: returns the sig index of the closing `]` of
    /// the attribute, or `None` if this `#` does not open one.
    fn scan_attribute(&self, s: usize) -> Option<usize> {
        let mut j = s + 1;
        if self.text(j) == "!" {
            j += 1;
        }
        if self.text(j) != "[" {
            return None;
        }
        let mut depth = 0i64;
        while j < self.sig.len() {
            match self.text(j) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Whether the attribute spanning sig `[s, end]` is a `cfg(… test …)`.
    fn attr_is_cfg_test(&self, s: usize, end: usize) -> bool {
        let mut saw_cfg = false;
        let mut saw_test = false;
        for j in s..=end {
            match self.text(j) {
                "cfg" => saw_cfg = true,
                "test" => saw_test = true,
                _ => {}
            }
        }
        saw_cfg && saw_test
    }

    /// From an `impl` sig index: extracts the implementing type name (last
    /// path segment; the type after `for` in trait impls) and the sig index
    /// of the body `{`.
    fn scan_impl_header(&self, s: usize) -> Option<(String, usize)> {
        let mut angle = 0i64;
        let mut last_for: Option<usize> = None;
        let mut open = None;
        let mut j = s + 1;
        while j < self.sig.len() {
            match self.text(j) {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "for" if angle == 0 => last_for = Some(j),
                "{" if angle <= 0 => {
                    open = Some(j);
                    break;
                }
                ";" if angle <= 0 => return None, // `impl Trait;`-ish, malformed
                _ => {}
            }
            j += 1;
        }
        let open = open?;
        let from = last_for.map_or(s + 1, |f| f + 1);
        // Last path segment before generics: walk `Ident (:: Ident)*`.
        let mut name: Option<String> = None;
        let mut k = from;
        while k < open {
            let t = self.text(k);
            if self.kind(k) == Some(TokenKind::Ident)
                && !matches!(t, "dyn" | "where" | "unsafe" | "const")
            {
                name = Some(t.trim_start_matches("r#").to_string());
                // Continue through `::` chains; stop at generics or the body.
                if self.text(k + 1) == "::" {
                    k += 2;
                    continue;
                }
                break;
            }
            if t == "<" {
                // Generics directly after `impl`: skip to the matching `>`.
                let mut a = 0i64;
                while k < open {
                    match self.text(k) {
                        "<" => a += 1,
                        ">" => a -= 1,
                        ">>" => a -= 2,
                        _ => {}
                    }
                    if a <= 0 && self.text(k) != "<" {
                        break;
                    }
                    k += 1;
                }
                continue;
            }
            k += 1;
        }
        Some((name?, open))
    }

    /// From the sig index after a fn's name: whether the parameter list
    /// mentions `self`, and the sig index of the body `{` (`None` for a
    /// declaration ending in `;`).
    fn scan_fn_signature(&self, s: usize) -> (bool, Option<usize>) {
        let mut is_method = false;
        let mut paren = 0i64;
        let mut bracket = 0i64;
        let mut seen_params = false;
        let mut j = s;
        while j < self.sig.len() {
            match self.text(j) {
                "(" => {
                    paren += 1;
                    if paren == 1 && !seen_params {
                        seen_params = true;
                    }
                }
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "self" if paren >= 1 && seen_params => is_method = true,
                "{" if paren == 0 && bracket == 0 && seen_params => return (is_method, Some(j)),
                ";" if paren == 0 && bracket == 0 => return (is_method, None),
                _ => {}
            }
            j += 1;
        }
        (is_method, None)
    }

    /// From a `for` sig index inside a body: collects the identifiers of
    /// the iterated expression (between `in` and the loop `{`).
    fn scan_for_header(&self, s: usize, in_test: bool) -> Option<ForLoop> {
        let line = self.line(s);
        let mut j = s + 1;
        let mut depth = 0i64;
        // Find the `in` at pattern depth 0 (destructuring tuples nest).
        while j < self.sig.len() {
            match self.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "in" if depth == 0 => break,
                "{" | ";" => return None, // not a for-loop header
                _ => {}
            }
            j += 1;
            if j > s + 64 {
                return None; // runaway; not a loop header we understand
            }
        }
        let mut idents = Vec::new();
        let mut d = 0i64;
        let mut k = j + 1;
        while k < self.sig.len() {
            let t = self.text(k);
            match t {
                "(" | "[" => d += 1,
                ")" | "]" => d -= 1,
                "{" if d == 0 => break,
                ";" => return None,
                _ => {
                    if self.kind(k) == Some(TokenKind::Ident) {
                        idents.push(t.trim_start_matches("r#").to_string());
                    }
                }
            }
            k += 1;
            if k > j + 128 {
                break;
            }
        }
        Some(ForLoop {
            expr_idents: idents,
            line,
            in_test,
        })
    }

    /// From an Ident sig index inside a body: classifies a call site, if
    /// the identifier heads one.
    fn scan_call(&self, s: usize) -> Option<CallSite> {
        let name = self.text(s);
        let prev = if s > 0 { self.text(s - 1) } else { "" };
        if prev == "fn" {
            return None; // definition, not a call
        }
        let line = self.line(s);
        let is_method = prev == ".";
        if !is_method && CALL_KEYWORDS.contains(&name) {
            return None;
        }
        // What follows: `(`, `!(`-ish, or a turbofish then `(`.
        let mut after = s + 1;
        if self.text(after) == "::" && self.text(after + 1) == "<" {
            // Turbofish: skip the matched angle-bracket group.
            let mut angle = 0i64;
            let mut j = after + 1;
            while j < self.sig.len() {
                match self.text(j) {
                    "<" | "<<" => angle += if self.text(j) == "<<" { 2 } else { 1 },
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    ";" | "{" => return None,
                    _ => {}
                }
                if angle <= 0 {
                    break;
                }
                j += 1;
                if j > after + 128 {
                    return None;
                }
            }
            after = j + 1;
        } else if self.text(after) == "::" {
            // Mid-path segment (`Vec::new` seen at `Vec`): only the last
            // segment heads the call; skip here, handle at `new`.
            return None;
        }
        let next = self.text(after);
        let is_macro = next == "!" && matches!(self.text(after + 1), "(" | "[" | "{") && !is_method;
        if !is_macro && next != "(" {
            return None;
        }
        // Build the full path by walking back over `Ident ::` pairs.
        let mut first = s;
        let mut path = name.trim_start_matches("r#").to_string();
        if !is_method {
            while first >= 2
                && self.text(first - 1) == "::"
                && self.kind(first - 2) == Some(TokenKind::Ident)
            {
                path = format!(
                    "{}::{}",
                    self.text(first - 2).trim_start_matches("r#"),
                    path
                );
                first -= 2;
            }
            // A path headed by `.` is a method call chain continuation
            // handled at its own head; `a.b::c()` is not valid Rust.
        }
        if is_macro {
            path.push('!');
        }
        // Receiver for method calls: the identifier just before the dot,
        // looking through one `[…]` index group (`self.map[k].iter()`).
        let recv = if is_method {
            let mut r = s.checked_sub(2);
            if let Some(mut ri) = r {
                if self.text(ri) == "]" {
                    let mut depth = 0i64;
                    while ri > 0 {
                        match self.text(ri) {
                            "]" => depth += 1,
                            "[" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        ri -= 1;
                    }
                    r = ri.checked_sub(1);
                }
            }
            r.filter(|&ri| self.kind(ri) == Some(TokenKind::Ident))
                .map(|ri| self.text(ri).trim_start_matches("r#").to_string())
        } else {
            None
        };
        Some(CallSite {
            path,
            recv,
            is_method,
            is_macro,
            line,
        })
    }

    /// From a `HashMap`/`HashSet` sig index: finds the bound identifier
    /// this type annotates or initializes (`windows: HashMap<…>`,
    /// `let m = HashMap::new()`, `m: Vec<HashMap<…>>`).
    fn hash_binding_name(&self, s: usize) -> Option<String> {
        let mut j = s;
        let mut steps = 0;
        while j > 0 {
            j -= 1;
            steps += 1;
            if steps > 24 {
                return None;
            }
            match self.text(j) {
                ":" | "=" => {
                    // Token before the `:`/`=` is the binding name.
                    let k = j.checked_sub(1)?;
                    if self.kind(k) == Some(TokenKind::Ident) {
                        let name = self.text(k);
                        if !CALL_KEYWORDS.contains(&name) {
                            return Some(name.trim_start_matches("r#").to_string());
                        }
                    }
                    return None;
                }
                // `::` is part of a path prefix (`std::collections::HashMap`):
                // keep walking toward the binding.
                ";" | "{" | "}" | "(" | "," => return None,
                _ => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_defs_get_impl_context_and_methodness() {
        let items = parse(
            "impl Sm {\n    pub fn tick(&mut self, now: u64) { self.fetch(now); }\n    fn helper(x: u32) -> u32 { x }\n}\nfn free() {}\n",
        );
        let names: Vec<String> = items.fns.iter().map(FnDef::qualified).collect();
        assert_eq!(names, ["Sm::tick", "Sm::helper", "free"]);
        assert!(items.fns[0].is_method);
        assert!(!items.fns[1].is_method);
        assert_eq!(items.fns[0].calls.len(), 1);
        assert_eq!(items.fns[0].calls[0].path, "fetch");
        assert!(items.fns[0].calls[0].is_method);
    }

    #[test]
    fn trait_impls_take_the_type_after_for() {
        let items = parse(
            "impl fmt::Display for Violation {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write!(f, \"x\") }\n}\n",
        );
        assert_eq!(items.fns[0].qualified(), "Violation::fmt");
        assert!(items.fns[0].calls.iter().any(|c| c.path == "write!"));
    }

    #[test]
    fn generic_impls_resolve_the_base_type() {
        let items = parse("impl<T: Clone> Stack<T> {\n    fn push(&mut self, t: T) {}\n}\n");
        assert_eq!(items.fns[0].qualified(), "Stack::push");
    }

    #[test]
    fn path_calls_methods_and_macros_are_distinguished() {
        let items = parse(
            "fn f() {\n    let v = Vec::new();\n    let w = vec![1];\n    let s: Vec<u32> = w.iter().copied().collect::<Vec<u32>>();\n    Self::helper();\n    std::mem::take(&mut s);\n}\n",
        );
        let calls = &items.fns[0].calls;
        let paths: Vec<&str> = calls.iter().map(|c| c.path.as_str()).collect();
        assert!(paths.contains(&"Vec::new"));
        assert!(paths.contains(&"vec!"));
        assert!(paths.contains(&"collect"));
        assert!(paths.contains(&"Self::helper"));
        assert!(paths.contains(&"std::mem::take"));
        let collect = calls.iter().find(|c| c.path == "collect").unwrap();
        assert!(collect.is_method);
    }

    #[test]
    fn nested_fns_own_their_calls_but_closures_do_not() {
        let items = parse(
            "fn outer() {\n    fn inner() { alloc_here(); }\n    let c = || in_closure();\n    c();\n}\n",
        );
        let outer = items.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = items.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.calls.iter().any(|c| c.path == "in_closure"));
        assert!(!outer.calls.iter().any(|c| c.path == "alloc_here"));
        assert!(inner.calls.iter().any(|c| c.path == "alloc_here"));
    }

    #[test]
    fn cfg_test_regions_cover_modules_and_single_items() {
        let items = parse(
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}\n#[cfg(test)]\nuse std::fmt;\n",
        );
        assert!(!items.in_test(1));
        assert!(items.in_test(3));
        assert!(items.in_test(4));
        assert!(!items.in_test(6));
        assert!(items.in_test(8));
        let t = items.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.in_test);
    }

    #[test]
    fn for_loop_headers_collect_iterated_idents() {
        let items = parse(
            "fn f(m: &std::collections::HashMap<u32, u32>) {\n    for (k, v) in m.iter() { use_it(k, v); }\n    for i in 0..10 { use_it(i, i); }\n}\n",
        );
        assert_eq!(items.for_loops.len(), 2);
        assert!(items.for_loops[0].expr_idents.contains(&"m".to_string()));
        assert!(items.hash_idents.contains("m"));
    }

    #[test]
    fn hash_bindings_found_in_fields_lets_and_nested_types() {
        let items = parse(
            "struct S {\n    windows: HashMap<usize, W>,\n    fills: Vec<HashMap<u64, Vec<R>>>,\n}\nfn f() {\n    let m = HashMap::new();\n    let s: HashSet<u32> = HashSet::new();\n}\n",
        );
        for name in ["windows", "fills", "m", "s"] {
            assert!(items.hash_idents.contains(name), "{name} not found");
        }
    }

    #[test]
    fn allows_parse_rules_and_justifications() {
        let items = parse(
            "// capacity fixed at construction; xtask-allow: no-tick-alloc\nfn a() {}\n// xtask-allow: determinism -- drained in sorted order below\nfn b() {}\n// xtask-allow: no-unwrap\nfn c() {}\n",
        );
        let a = items.allow_for(2, "no-tick-alloc").unwrap();
        assert_eq!(
            a.justification.as_deref(),
            Some("capacity fixed at construction")
        );
        let b = items.allow_for(4, "determinism").unwrap();
        assert_eq!(
            b.justification.as_deref(),
            Some("drained in sorted order below")
        );
        let c = items.allow_for(6, "no-unwrap").unwrap();
        assert!(c.justification.is_none());
    }

    #[test]
    fn module_docs_detection_allows_inner_attributes() {
        assert!(parse("//! Docs.\nfn f() {}\n").has_module_docs);
        assert!(parse("#![allow(dead_code)]\n//! Docs.\nfn f() {}\n").has_module_docs);
        assert!(!parse("/// outer doc\nfn f() {}\n").has_module_docs);
        assert!(!parse("fn f() {}\n").has_module_docs);
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let items = parse("trait T {\n    fn tick(&mut self, now: u64);\n    fn with_default(&self) { self.tick(0); }\n}\n");
        let decl = items.fns.iter().find(|f| f.name == "tick").unwrap();
        assert!(decl.body_lines.is_none());
        let def = items.fns.iter().find(|f| f.name == "with_default").unwrap();
        assert!(def.body_lines.is_some());
    }

    #[test]
    fn method_receivers_look_through_index_groups() {
        let items = parse(
            "fn f(&self) {\n    self.pending_fills[ch].get_mut(&k);\n    self.windows.iter();\n}\n",
        );
        let calls = &items.fns[0].calls;
        let gm = calls.iter().find(|c| c.path == "get_mut").unwrap();
        assert_eq!(gm.recv.as_deref(), Some("pending_fills"));
        let it = calls.iter().find(|c| c.path == "iter").unwrap();
        assert_eq!(it.recv.as_deref(), Some("windows"));
    }
}
