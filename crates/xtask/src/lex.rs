//! A std-only Rust lexer for the lint engine.
//!
//! The old lint pass masked source text line by line with ad-hoc string /
//! comment heuristics, which mis-handled raw strings spanning lines and
//! nested block comments (see the regression fixtures under
//! `crates/xtask/fixtures/`). This module replaces masking with a real
//! tokenizer whose output satisfies two contracts the rest of the engine
//! (and a property test over every workspace source file) relies on:
//!
//! 1. **Totality** — [`lex`] never panics, on any input. Malformed input
//!    (unterminated strings or comments, stray bytes) degrades to
//!    best-effort tokens, never to an error.
//! 2. **Span round-trip** — the emitted token spans tile the input exactly:
//!    concatenating `src[t.start..t.end]` over all tokens reproduces the
//!    source byte-for-byte, with no gaps and no overlaps.
//!
//! The lexer understands everything the lint rules need to never fire
//! inside non-code text: line and (nested) block comments, doc comments,
//! string / raw-string / byte-string / char / byte literals with escapes,
//! raw identifiers (`r#match`), lifetimes vs. char literals, and numeric
//! literals with separators, exponents, and type suffixes. Compound
//! operators (`==`, `!=`, `::`, `->`, …) are emitted as single
//! maximal-munch [`TokenKind::Punct`] tokens so rules can match them
//! without reconstructing adjacency.

/// Classification of one source token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace (kept so spans tile the file).
    Whitespace,
    /// `// …` to end of line, including `///` and `//!` doc forms.
    LineComment,
    /// `/* … */`, nesting-aware, including `/** … */` and `/*! … */`.
    BlockComment,
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Integer literal (`42`, `0xFF_u32`).
    Int,
    /// Float literal (`1.0`, `1e-9`, `2f64`).
    Float,
    /// `"…"` string literal.
    Str,
    /// `r"…"` / `r#"…"#` raw string literal.
    RawStr,
    /// `b"…"` byte-string literal.
    ByteStr,
    /// `br"…"` / `br#"…"#` raw byte-string literal.
    RawByteStr,
    /// `'x'` char literal.
    Char,
    /// `b'x'` byte literal.
    Byte,
    /// Operator or punctuation, maximal-munch (`==`, `..=`, `(`, …).
    Punct,
    /// Any byte the grammar does not recognize (never fails the lexer).
    Unknown,
}

/// One token: a classified byte span of the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the span is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the same source passed to [`lex`]).
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Multi-character operators, longest first so maximal munch is a prefix
/// scan. Single-character punctuation falls through to a one-byte token.
const COMPOUND_OPS: [&str; 25] = [
    "<<=", ">>=", "...", "..=", "==", "!=", "<=", ">=", "=>", "->", "<-", "::", "..", "&&", "||",
    "<<", ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Cursor over the source with line tracking. All advancing is by whole
/// `char`s so slicing at `pos` is always on a boundary.
struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            if c == '\n' {
                self.line += 1;
            }
            self.pos += c.len_utf8();
        }
    }

    /// Advances past `n` chars (not bytes).
    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes chars while `pred` holds.
    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
    }
}

/// Tokenizes `src` completely. Never panics; the returned spans tile the
/// input exactly (see the module docs for the contracts).
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src,
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let line = cur.line;
        let kind = scan_token(&mut cur, c);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        out.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
        });
    }
    out
}

/// Scans one token starting at `c`; advances the cursor past it.
fn scan_token(cur: &mut Cursor<'_>, c: char) -> TokenKind {
    if c.is_whitespace() {
        cur.eat_while(char::is_whitespace);
        return TokenKind::Whitespace;
    }
    let rest = cur.rest();
    if rest.starts_with("//") {
        cur.eat_while(|c| c != '\n');
        return TokenKind::LineComment;
    }
    if rest.starts_with("/*") {
        return scan_block_comment(cur);
    }
    // Raw strings / raw identifiers and byte-literal families start with a
    // prefix letter; try those before the generic identifier path.
    if c == 'r' {
        if let Some(kind) = scan_raw_prefixed(cur, TokenKind::RawStr) {
            return kind;
        }
    }
    if c == 'b' {
        match cur.peek_at(1) {
            Some('\'') => {
                cur.bump(); // `b`
                cur.bump(); // `'`
                scan_char_body(cur);
                return TokenKind::Byte;
            }
            Some('"') => {
                cur.bump(); // `b`
                cur.bump(); // `"`
                scan_str_body(cur);
                return TokenKind::ByteStr;
            }
            Some('r') => {
                let save = (cur.pos, cur.line);
                cur.bump(); // `b`
                if scan_raw_prefixed(cur, TokenKind::RawByteStr) == Some(TokenKind::RawByteStr) {
                    return TokenKind::RawByteStr;
                }
                // `br` followed by neither `"` nor `#"…` (e.g. an ident
                // starting with `br`, or `b` then `r#ident`): rewind and
                // let the identifier path take it.
                (cur.pos, cur.line) = save;
            }
            _ => {}
        }
    }
    if is_ident_start(c) {
        cur.eat_while(is_ident_continue);
        return TokenKind::Ident;
    }
    if c.is_ascii_digit() {
        return scan_number(cur);
    }
    if c == '\'' {
        return scan_quote(cur);
    }
    if c == '"' {
        cur.bump();
        scan_str_body(cur);
        return TokenKind::Str;
    }
    for op in COMPOUND_OPS {
        if rest.starts_with(op) {
            cur.bump_n(op.chars().count());
            return TokenKind::Punct;
        }
    }
    cur.bump();
    if c.is_ascii_punctuation() {
        TokenKind::Punct
    } else {
        TokenKind::Unknown
    }
}

/// Scans `/* … */` with nesting; an unterminated comment runs to EOF.
fn scan_block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump_n(2);
    let mut depth = 1u32;
    while depth > 0 {
        let rest = cur.rest();
        if rest.is_empty() {
            break;
        }
        if rest.starts_with("/*") {
            depth += 1;
            cur.bump_n(2);
        } else if rest.starts_with("*/") {
            depth -= 1;
            cur.bump_n(2);
        } else {
            cur.bump();
        }
    }
    TokenKind::BlockComment
}

/// At a cursor on `r`: scans a raw string (`r"…"`, `r#"…"#`), a raw
/// identifier (`r#match`), or returns `None` to fall back to the plain
/// identifier path. `kind` is the token kind for the raw-string case.
fn scan_raw_prefixed(cur: &mut Cursor<'_>, kind: TokenKind) -> Option<TokenKind> {
    let after: String = cur.rest().chars().skip(1).take(256).collect();
    let hashes = after.chars().take_while(|&c| c == '#').count();
    match after.chars().nth(hashes) {
        Some('"') => {
            cur.bump(); // `r`
            cur.bump_n(hashes + 1); // hashes + opening quote
            scan_raw_str_body(cur, hashes);
            Some(kind)
        }
        Some(c) if hashes == 1 && is_ident_start(c) => {
            // Raw identifier `r#ident`.
            cur.bump(); // `r`
            cur.bump(); // `#`
            cur.eat_while(is_ident_continue);
            Some(TokenKind::Ident)
        }
        _ => None,
    }
}

/// Scans a raw-string body up to `"` followed by `hashes` `#`s (or EOF).
fn scan_raw_str_body(cur: &mut Cursor<'_>, hashes: usize) {
    loop {
        match cur.peek() {
            None => return,
            Some('"') => {
                let closing = cur.rest()[1..]
                    .chars()
                    .take(hashes)
                    .filter(|&c| c == '#')
                    .count();
                if closing == hashes {
                    cur.bump_n(1 + hashes);
                    return;
                }
                cur.bump();
            }
            Some(_) => cur.bump(),
        }
    }
}

/// Scans a (possibly multi-line) string body after the opening quote.
fn scan_str_body(cur: &mut Cursor<'_>) {
    loop {
        match cur.peek() {
            None => return,
            Some('\\') => cur.bump_n(2),
            Some('"') => {
                cur.bump();
                return;
            }
            Some(_) => cur.bump(),
        }
    }
}

/// Scans a char-literal body after the opening quote (escapes included).
fn scan_char_body(cur: &mut Cursor<'_>) {
    loop {
        match cur.peek() {
            None | Some('\n') => return, // unterminated; don't swallow lines
            Some('\\') => cur.bump_n(2),
            Some('\'') => {
                cur.bump();
                return;
            }
            Some(_) => cur.bump(),
        }
    }
}

/// At a `'`: disambiguates a char literal from a lifetime / loop label.
fn scan_quote(cur: &mut Cursor<'_>) -> TokenKind {
    let first = cur.peek_at(1);
    let second = cur.peek_at(2);
    match first {
        // `'\n'`, `'\u{1F600}'` — escape means char literal.
        Some('\\') => {
            cur.bump();
            scan_char_body(cur);
            TokenKind::Char
        }
        // `'x'` — a closing quote right after one char is a literal. This
        // also classifies `'_'` (the underscore char) correctly; the
        // lifetime `'_` is never followed by a quote.
        Some(_) if second == Some('\'') => {
            cur.bump();
            scan_char_body(cur);
            TokenKind::Char
        }
        // `'a`, `'static`, `'outer:` — identifier-ish with no closing
        // quote is a lifetime or label.
        Some(c) if is_ident_start(c) => {
            cur.bump();
            cur.eat_while(is_ident_continue);
            TokenKind::Lifetime
        }
        // Lone or trailing quote: emit it alone, never fail.
        _ => {
            cur.bump();
            TokenKind::Unknown
        }
    }
}

/// Scans a numeric literal (the cursor is on an ASCII digit).
fn scan_number(cur: &mut Cursor<'_>) -> TokenKind {
    let rest = cur.rest();
    if rest.starts_with("0x") || rest.starts_with("0o") || rest.starts_with("0b") {
        // Base-prefixed integers; alnum eats both digits and any suffix
        // (`0xFF_u64`). These are never floats.
        cur.bump_n(2);
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
        return TokenKind::Int;
    }
    cur.eat_while(|c| c.is_ascii_digit() || c == '_');
    let mut float = false;
    // Fractional part: `.` only joins the number when a digit follows or it
    // terminates the literal (`1.`); `1..2` is a range and `1.max(2)` an
    // integer method call.
    if cur.peek() == Some('.') {
        match cur.peek_at(1) {
            Some(c) if c.is_ascii_digit() => {
                float = true;
                cur.bump();
                cur.eat_while(|c| c.is_ascii_digit() || c == '_');
            }
            Some(c) if c == '.' || is_ident_start(c) => {}
            _ => {
                float = true;
                cur.bump();
            }
        }
    }
    // Exponent: `e`/`E` with an optional sign, only when digits follow
    // (`1e9`, `1E-9`); otherwise the `e…` is a suffix or separate ident.
    if matches!(cur.peek(), Some('e' | 'E')) {
        let (sign, digit) = match cur.peek_at(1) {
            Some('+' | '-') => (1, cur.peek_at(2)),
            other => (0, other),
        };
        if digit.is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            cur.bump_n(1 + sign);
            cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        }
    }
    // Type suffix (`u32`, `f64`, arbitrary ident chars).
    let suffix_start = cur.pos;
    cur.eat_while(is_ident_continue);
    let suffix = &cur.src[suffix_start..cur.pos];
    if suffix.starts_with("f32") || suffix.starts_with("f64") {
        float = true;
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    fn round_trips(src: &str) {
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap or overlap at byte {pos} in {src:?}");
            assert!(t.end > t.start, "empty token in {src:?}");
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "tokens do not cover {src:?}");
    }

    #[test]
    fn idents_keywords_and_punct() {
        let ks = kinds("fn foo(x: u32) -> bool { x == 3 }");
        assert_eq!(ks[0], (TokenKind::Ident, "fn"));
        assert_eq!(ks[1], (TokenKind::Ident, "foo"));
        assert!(ks.contains(&(TokenKind::Punct, "->")));
        assert!(ks.contains(&(TokenKind::Punct, "==")));
        round_trips("fn foo(x: u32) -> bool { x == 3 }");
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* a /* b */ c */ fn f() {}";
        let ks = kinds(src);
        assert_eq!(ks[0], (TokenKind::BlockComment, "/* a /* b */ c */"));
        assert_eq!(ks[1], (TokenKind::Ident, "fn"));
        round_trips(src);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"has \"quotes\" and .unwrap()\"#;";
        let ks = kinds(src);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.contains("unwrap")));
        // No Ident token named `unwrap` leaks out of the literal.
        assert!(!ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
        round_trips(src);
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let ks = kinds("let r#type = 1; r#match();");
        assert_eq!(ks[1], (TokenKind::Ident, "r#type"));
        assert!(ks.contains(&(TokenKind::Ident, "r#match")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let u = '_'; let l: &'_ str = x; }");
        assert!(ks.contains(&(TokenKind::Lifetime, "'a")));
        assert!(ks.contains(&(TokenKind::Char, "'x'")));
        assert!(ks.contains(&(TokenKind::Char, "'_'")));
        assert!(ks.contains(&(TokenKind::Lifetime, "'_")));
    }

    #[test]
    fn escaped_char_literals() {
        let ks = kinds(r"let a = '\''; let b = '\\'; let c = '\u{1F600}';");
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            3,
            "{ks:?}"
        );
    }

    #[test]
    fn byte_literals_and_byte_strings() {
        let ks = kinds(r##"let a = b'x'; let b = b"bytes"; let c = br#"raw"#;"##);
        assert!(ks.contains(&(TokenKind::Byte, "b'x'")));
        assert!(ks.iter().any(|(k, _)| *k == TokenKind::ByteStr));
        assert!(ks.iter().any(|(k, _)| *k == TokenKind::RawByteStr));
    }

    #[test]
    fn numeric_literals() {
        let ks = kinds("1 1.5 1. 1e9 1E-9 0xFF_u32 0b1010 1_000u64 2f64 1.max(2) 0..10");
        let floats: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(floats, ["1.5", "1.", "1e9", "1E-9", "2f64"]);
        assert!(ks.contains(&(TokenKind::Int, "0xFF_u32")));
        assert!(ks.contains(&(TokenKind::Int, "1_000u64")));
        // `1.max(2)` is an integer method call, `0..10` a range.
        assert!(ks.contains(&(TokenKind::Ident, "max")));
        assert!(ks.contains(&(TokenKind::Punct, "..")));
    }

    #[test]
    fn multiline_strings_track_lines() {
        let src = "let s = \"one\ntwo\";\nfn f() {}\n";
        let toks = lex(src);
        let f = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident && t.text(src) == "fn");
        assert_eq!(f.map(|t| t.line), Some(3));
        round_trips(src);
    }

    #[test]
    fn doc_comments_are_line_comments() {
        let ks = kinds("//! inner\n/// outer\nfn f() {}");
        assert_eq!(ks[0], (TokenKind::LineComment, "//! inner"));
        assert_eq!(ks[1], (TokenKind::LineComment, "/// outer"));
    }

    #[test]
    fn pathological_inputs_never_panic() {
        for src in [
            "",
            "\"unterminated",
            "r#\"unterminated",
            "/* never closed /* nested",
            "'",
            "b'",
            "let x = '\\",
            "\u{1F600} emoji at top level",
            "r#",
            "1e",
            "0x",
            "ident'a'b",
        ] {
            round_trips(src);
        }
    }
}
