//! The custom static-analysis pass: simulator-specific lint rules that
//! `cargo clippy` cannot express, implemented as a source-text scanner so
//! they run without any external dependency.
//!
//! ## Rules
//!
//! * `no-unwrap` — `.unwrap()` / `.expect(...)` are forbidden in library
//!   code under `crates/*/src`. Panics in the simulator's libraries abort
//!   long experiment sweeps; fallible paths must return `Option`/`Result`
//!   (or carry an `xtask-allow` justification for genuine invariants).
//!   Tests, examples, benches, `src/bin/` binaries, and `#[cfg(test)]`
//!   modules are exempt.
//! * `no-lossy-cast` — value-truncating `as` casts (to any integer type or
//!   `f32`) are forbidden in the accounting-critical modules (`alloc.rs`,
//!   `waterfill.rs`, `resources.rs`, `stats.rs`, `mshr.rs`): a silently
//!   wrapping cast in resource bookkeeping skews every reproduced figure
//!   without failing a test. Use `From`/`try_from` or widen the type.
//! * `no-float-eq` — direct `==`/`!=` against a floating-point literal.
//!   IPC and normalized-performance values accumulate rounding error;
//!   compare with an epsilon instead.
//! * `module-docs` — every library source file must open with `//!` module
//!   documentation before its first item.
//! * `no-index-panic` — direct index expressions (`x[i]`) are forbidden in
//!   the static-analyzer crate (`crates/analysis`) and in the water-filling
//!   kernel (`crates/core/src/waterfill.rs`): both sit on the verification
//!   path, where an out-of-bounds panic would take down the very gate meant
//!   to catch malformed inputs. Use `get`/`get_mut`, iterators, or
//!   destructuring (or carry an `xtask-allow` justification).
//! * `no-unchecked-spawn` — in the execution layer (`crates/exec`), raw
//!   `thread::spawn` and discarded join handles (`.join().ok()`, a `let _`
//!   binding of a `.join()`) are forbidden: every worker must live inside a
//!   `std::thread::scope`, whose exit propagates worker panics instead of
//!   silently losing them. The determinism contract (results keyed by job
//!   index, every slot filled) depends on no thread outliving its batch.
//! * `no-tick-alloc` — heap allocations (`Vec::new(`, `vec![`, `.to_vec()`)
//!   are forbidden inside the simulator's per-cycle tick-path functions
//!   (`crates/gpu-sim/src` plus the ws-trace audit channel
//!   `crates/core/src/audit.rs`, the function names in [`TICK_PATH_FNS`]).
//!   These run millions of times per experiment; an allocation there is
//!   invisible in tests but dominates sweep wall-clock (DESIGN.md §9). The
//!   trace/audit `record` sinks are included so event capture stays
//!   allocation-free after construction. Reuse a member or caller-owned
//!   buffer (`std::mem::take` + `clear` is fine).
//!
//! Any finding is suppressed by a `// xtask-allow: <rule>` comment on the
//! same line or the line immediately above (for `module-docs`: on the first
//! line of the file). Multiple rules may be listed, comma-separated.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Names of every rule, for help text.
pub const RULE_NAMES: [&str; 7] = [
    "no-unwrap",
    "no-lossy-cast",
    "no-float-eq",
    "module-docs",
    "no-index-panic",
    "no-unchecked-spawn",
    "no-tick-alloc",
];

/// Functions on the simulator's per-cycle hot path. `no-tick-alloc`
/// applies to the bodies of functions with these names under
/// `crates/gpu-sim/src`; everything else (constructors, launch/evict,
/// tests) may allocate freely.
pub const TICK_PATH_FNS: [&str; 12] = [
    "tick",
    "tick_fast_forward",
    "fast_forward",
    "on_fill",
    "next_event",
    "account_skip",
    "classify_stall",
    "compute_horizon",
    "drain_completions_into",
    "take_completions",
    "record",
    "record_stall_window",
];

/// Allocation patterns forbidden on the tick path.
const TICK_ALLOC_PATTERNS: [&str; 3] = ["Vec::new(", "vec![", ".to_vec()"];

/// Keywords that may legitimately precede a `[` starting an array literal or
/// slice pattern; a `[` after one of these is not an index expression.
const INDEX_EXEMPT_KEYWORDS: [&str; 14] = [
    "return", "in", "let", "mut", "ref", "box", "move", "else", "match", "break", "as", "dyn",
    "const", "static",
];

/// File names (within `crates/*/src`) whose arithmetic is load-bearing for
/// the paper's accounting; `no-lossy-cast` applies only to these.
const ACCOUNTING_MODULES: [&str; 5] = [
    "alloc.rs",
    "waterfill.rs",
    "resources.rs",
    "stats.rs",
    "mshr.rs",
];

/// Cast targets considered lossy. `f64` is deliberately absent: every
/// integer the simulator casts into `f64` (cycle counts, CTA counts) is far
/// below 2^53.
const LOSSY_CAST_TARGETS: [&str; 13] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Path as reported (workspace-relative when walking the workspace).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-oriented explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Per-line facts extracted by the masking pre-pass.
struct MaskedLine {
    /// Source text with comments, string/char literals blanked out.
    code: String,
    /// Rules named in an `xtask-allow` comment on this line.
    allows: Vec<String>,
    /// Whether the line is inside (or is) a `#[cfg(test)]` item.
    in_test: bool,
    /// Whether the line is inside the body of a [`TICK_PATH_FNS`] function
    /// (only computed for files where `no-tick-alloc` applies).
    in_tick: bool,
    /// Whether the line carried a `//!` inner doc comment.
    inner_doc: bool,
}

/// Blanks comments and string/char literals, records `xtask-allow`
/// directives and `//!` lines. Operating on a masked copy means rule
/// patterns never fire inside strings, doc examples, or commentary.
fn mask_lines(src: &str) -> Vec<MaskedLine> {
    #[derive(PartialEq)]
    enum State {
        Code,
        Block(usize),
        Str,
        RawStr(usize),
    }
    let mut out: Vec<MaskedLine> = Vec::new();
    let mut state = State::Code;
    for raw in src.lines() {
        let bytes = raw.as_bytes();
        let mut code = String::with_capacity(raw.len());
        let mut allows = Vec::new();
        let mut inner_doc = false;
        let mut i = 0;
        while i < bytes.len() {
            match state {
                State::Code => {
                    let rest = &raw[i..];
                    if rest.starts_with("//") {
                        if rest.starts_with("//!") {
                            inner_doc = true;
                        }
                        if let Some(list) = rest.find("xtask-allow:").map(|p| &rest[p + 12..]) {
                            allows.extend(
                                list.split(',')
                                    .map(|r| r.trim().to_string())
                                    .filter(|r| !r.is_empty()),
                            );
                        }
                        break; // rest of line is comment
                    } else if rest.starts_with("/*") {
                        state = State::Block(1);
                        i += 2;
                    } else if rest.starts_with("r\"") {
                        state = State::RawStr(0);
                        i += 2;
                    } else if rest.starts_with("r#") {
                        let hashes = rest[1..].bytes().take_while(|&b| b == b'#').count();
                        if rest[1 + hashes..].starts_with('"') {
                            state = State::RawStr(hashes);
                            i += 2 + hashes;
                        } else {
                            code.push('r');
                            i += 1;
                        }
                    } else if bytes[i] == b'"' {
                        state = State::Str;
                        i += 1;
                    } else if bytes[i] == b'\'' {
                        // Char literal vs. lifetime: a literal closes with a
                        // quote within a few chars; a lifetime never does.
                        let close = raw[i + 1..]
                            .char_indices()
                            .take(4)
                            .find(|&(_, c)| c == '\'');
                        match close {
                            Some((off, _)) => {
                                i += 1 + off + 1; // skip the literal
                            }
                            None => {
                                // Lifetime or lone quote: emit as-is.
                                code.push('\'');
                                i += 1;
                            }
                        }
                    } else {
                        let ch = raw[i..].chars().next().unwrap_or(' ');
                        code.push(ch);
                        i += ch.len_utf8();
                    }
                }
                State::Block(depth) => {
                    let rest = &raw[i..];
                    if rest.starts_with("/*") {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else if rest.starts_with("*/") {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        i += 2;
                    } else {
                        i += raw[i..].chars().next().map_or(1, char::len_utf8);
                    }
                }
                State::Str => {
                    if bytes[i] == b'\\' {
                        i += 2; // skip escape; fine if it runs off the line
                    } else if bytes[i] == b'"' {
                        state = State::Code;
                        i += 1;
                    } else {
                        i += raw[i..].chars().next().map_or(1, char::len_utf8);
                    }
                }
                State::RawStr(hashes) => {
                    let rest = &raw[i..];
                    let mut terminator = String::from("\"");
                    terminator.push_str(&"#".repeat(hashes));
                    if rest.starts_with(terminator.as_str()) {
                        state = State::Code;
                        i += terminator.len();
                    } else {
                        i += rest.chars().next().map_or(1, char::len_utf8);
                    }
                }
            }
        }
        // An unterminated escape at line end (`\` before newline) keeps the
        // string state across lines, which is exactly right.
        out.push(MaskedLine {
            code,
            allows,
            in_test: false,
            in_tick: false,
            inner_doc,
        });
    }
    mark_test_regions(&mut out);
    out
}

/// Marks every line belonging to a `#[cfg(test)]` item (attribute line,
/// header, and the brace-balanced body).
fn mark_test_regions(lines: &mut [MaskedLine]) {
    let mut i = 0;
    while i < lines.len() {
        let code = lines[i].code.trim().to_string();
        if code.starts_with("#[cfg(test)]") {
            lines[i].in_test = true;
            // Scan forward to the first `{`, then to its matching `}`.
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                lines[j].in_test = true;
                for b in lines[j].code.bytes() {
                    match b {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => depth -= 1,
                        b';' if !opened && depth == 0 => {
                            // `#[cfg(test)] use ...;` — single-item form.
                            opened = true;
                            depth = 0;
                        }
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// Whether masked `code` contains a definition of a [`TICK_PATH_FNS`]
/// function: `fn <name>(` with a non-identifier byte (or line start)
/// before the `fn`.
fn defines_tick_fn(code: &str) -> bool {
    TICK_PATH_FNS.iter().any(|name| {
        let pat = format!("fn {name}(");
        let mut search = 0;
        while let Some(pos) = code[search..].find(pat.as_str()) {
            let at = search + pos;
            search = at + 3;
            if at == 0 || !is_ident_byte(code.as_bytes()[at - 1]) {
                return true;
            }
        }
        false
    })
}

/// Marks every line belonging to the body of a tick-path function: from
/// the `fn` line (signatures may span lines before the `{`) to its
/// matching close brace. A `;` before any `{` is a trait-method
/// declaration, which has no body to mark.
fn mark_tick_regions(lines: &mut [MaskedLine]) {
    let mut i = 0;
    while i < lines.len() {
        if !defines_tick_fn(&lines[i].code) {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        'body: while j < lines.len() {
            lines[j].in_tick = true;
            for b in lines[j].code.bytes() {
                match b {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth -= 1,
                    b';' if !opened && depth == 0 => {
                        lines[j].in_tick = false; // declaration only
                        break 'body;
                    }
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
}

fn allowed(lines: &[MaskedLine], idx: usize, rule: &str) -> bool {
    lines[idx].allows.iter().any(|a| a == rule)
        || (idx > 0 && lines[idx - 1].allows.iter().any(|a| a == rule))
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokens adjacent to byte range `[start, end)` of `code`: the word-ish
/// token ending right before `start` and the one starting right after `end`.
fn adjacent_tokens(code: &str, start: usize, end: usize) -> (String, String) {
    let bytes = code.as_bytes();
    let mut s = start;
    while s > 0 && bytes[s - 1] == b' ' {
        s -= 1;
    }
    let mut ps = s;
    // `-` is included so exponent literals like `1e-9` survive intact.
    while ps > 0 && (is_ident_byte(bytes[ps - 1]) || bytes[ps - 1] == b'.' || bytes[ps - 1] == b'-')
    {
        ps -= 1;
    }
    let prev = code[ps..s].to_string();
    let mut e = end;
    while e < bytes.len() && bytes[e] == b' ' {
        e += 1;
    }
    let mut pe = e;
    while pe < bytes.len() && (is_ident_byte(bytes[pe]) || bytes[pe] == b'.' || bytes[pe] == b'-') {
        pe += 1;
    }
    let next = code[e..pe].to_string();
    (prev, next)
}

/// Whether `tok` looks like a float literal (`0.5`, `1.`, `1e-9`, `1.0f64`).
fn is_float_literal(tok: &str) -> bool {
    let mut t = tok.trim_start_matches('-');
    if !t.starts_with(|c: char| c.is_ascii_digit()) {
        return false; // method call like `.len`, identifier, empty
    }
    let digits = |s: &str| -> usize {
        s.bytes()
            .take_while(|b| b.is_ascii_digit() || *b == b'_')
            .count()
    };
    let mut floatish = false;
    t = &t[digits(t)..];
    if let Some(rest) = t.strip_prefix('.') {
        floatish = true;
        t = &rest[digits(rest)..];
    }
    if let Some(rest) = t.strip_prefix(['e', 'E']) {
        let rest = rest.strip_prefix(['+', '-']).unwrap_or(rest);
        let n = digits(rest);
        if n == 0 {
            return false; // `2eX` is not a number
        }
        floatish = true;
        t = &rest[n..];
    }
    if let Some(rest) = t.strip_prefix("f64").or_else(|| t.strip_prefix("f32")) {
        floatish = true;
        t = rest;
    }
    floatish && t.is_empty()
}

/// Whether the `[` at byte offset `pos` of masked `code` begins an index
/// expression (something panickable) rather than an array literal, slice
/// pattern, type, or attribute.
fn is_index_expression(code: &str, pos: usize) -> bool {
    let bytes = code.as_bytes();
    let mut p = pos;
    while p > 0 && bytes.get(p - 1) == Some(&b' ') {
        p -= 1;
    }
    if p == 0 {
        return false;
    }
    let prev = bytes.get(p - 1).copied().unwrap_or(b' ');
    if prev == b')' || prev == b']' {
        return true;
    }
    if !is_ident_byte(prev) {
        return false;
    }
    // Extract the word ending at `p`; a keyword there introduces an array
    // literal or pattern (`return [..]`, `let [a, b] = ..`), not an index.
    let mut start = p;
    while start > 0 && is_ident_byte(bytes.get(start - 1).copied().unwrap_or(b' ')) {
        start -= 1;
    }
    let word = code.get(start..p).unwrap_or("");
    if INDEX_EXEMPT_KEYWORDS.contains(&word) {
        return false;
    }
    // A bare number before `[` cannot be an indexable expression.
    !word.bytes().all(|b| b.is_ascii_digit())
}

/// Applies every line rule to one masked file.
fn scan_masked(
    file: &str,
    lines: &[MaskedLine],
    check_unwrap: bool,
    check_casts: bool,
    check_index: bool,
    check_spawn: bool,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, ml) in lines.iter().enumerate() {
        if ml.in_test {
            continue;
        }
        let lineno = idx + 1;
        let code = ml.code.as_str();
        if check_unwrap {
            for pat in [".unwrap()", ".expect("] {
                if code.contains(pat) && !allowed(lines, idx, "no-unwrap") {
                    out.push(Violation {
                        rule: "no-unwrap",
                        file: file.to_string(),
                        line: lineno,
                        message: format!(
                            "`{pat}` in library code; return Option/Result or justify with \
                             `// xtask-allow: no-unwrap`"
                        ),
                    });
                }
            }
        }
        if check_casts {
            let mut search = 0;
            // The surrounding spaces in the pattern already guarantee `as`
            // is a standalone token.
            while let Some(pos) = code[search..].find(" as ") {
                let at = search + pos;
                search = at + 4;
                let after = &code[at + 4..];
                let target: String = after
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if LOSSY_CAST_TARGETS.contains(&target.as_str())
                    && !allowed(lines, idx, "no-lossy-cast")
                {
                    out.push(Violation {
                        rule: "no-lossy-cast",
                        file: file.to_string(),
                        line: lineno,
                        message: format!(
                            "lossy `as {target}` cast in accounting-critical module; use \
                             `From`/`try_from` or widen, or justify with \
                             `// xtask-allow: no-lossy-cast`"
                        ),
                    });
                }
            }
        }
        if check_index {
            for (pos, b) in code.bytes().enumerate() {
                if b == b'['
                    && is_index_expression(code, pos)
                    && !allowed(lines, idx, "no-index-panic")
                {
                    out.push(Violation {
                        rule: "no-index-panic",
                        file: file.to_string(),
                        line: lineno,
                        message: "direct index expression can panic on the verification \
                                  path; use `get`/iterators/destructuring or justify with \
                                  `// xtask-allow: no-index-panic`"
                            .to_string(),
                    });
                }
            }
        }
        if ml.in_tick && !allowed(lines, idx, "no-tick-alloc") {
            for pat in TICK_ALLOC_PATTERNS {
                if code.contains(pat) {
                    out.push(Violation {
                        rule: "no-tick-alloc",
                        file: file.to_string(),
                        line: lineno,
                        message: format!(
                            "`{pat}` allocates inside a per-cycle tick-path function; \
                             reuse a member or caller-owned buffer, or justify with \
                             `// xtask-allow: no-tick-alloc`"
                        ),
                    });
                }
            }
        }
        if check_spawn && !allowed(lines, idx, "no-unchecked-spawn") {
            if code.contains("thread::spawn") {
                out.push(Violation {
                    rule: "no-unchecked-spawn",
                    file: file.to_string(),
                    line: lineno,
                    message: "raw `thread::spawn` in the execution layer; use a \
                              `std::thread::scope` worker (scope exit checks every join) \
                              or justify with `// xtask-allow: no-unchecked-spawn`"
                        .to_string(),
                });
            }
            let discards_join = code.contains(".join().ok()")
                || (code.contains(".join(") && code.contains("let _ "))
                || (code.contains(".join(") && code.contains("let _="));
            if discards_join {
                out.push(Violation {
                    rule: "no-unchecked-spawn",
                    file: file.to_string(),
                    line: lineno,
                    message: "discarded join handle result in the execution layer; a \
                              swallowed worker panic breaks the determinism contract — \
                              propagate it or justify with \
                              `// xtask-allow: no-unchecked-spawn`"
                        .to_string(),
                });
            }
        }
        for op in ["==", "!="] {
            let mut search = 0;
            while let Some(pos) = code[search..].find(op) {
                let at = search + pos;
                search = at + 2;
                // Skip `<=`, `>=`, `===`-ish neighbourhoods and pattern `=>`.
                if at > 0 && matches!(code.as_bytes()[at - 1], b'<' | b'>' | b'=' | b'!') {
                    continue;
                }
                if code.as_bytes().get(at + 2) == Some(&b'=') {
                    continue;
                }
                let (prev, next) = adjacent_tokens(code, at, at + 2);
                if (is_float_literal(&prev) || is_float_literal(&next))
                    && !allowed(lines, idx, "no-float-eq")
                {
                    out.push(Violation {
                        rule: "no-float-eq",
                        file: file.to_string(),
                        line: lineno,
                        message: format!(
                            "direct floating-point `{op}` comparison; use an epsilon \
                             (rounding error accumulates in IPC/perf values) or justify \
                             with `// xtask-allow: no-float-eq`"
                        ),
                    });
                }
            }
        }
    }
    // module-docs: a `//!` must appear before the first line of code.
    let first_code = lines
        .iter()
        .position(|ml| !ml.code.trim().is_empty() && !ml.code.trim().starts_with("#!["));
    let has_doc_before = lines[..first_code.unwrap_or(lines.len())]
        .iter()
        .any(|ml| ml.inner_doc);
    if !has_doc_before && !lines.is_empty() && !allowed(lines, 0, "module-docs") {
        out.push(Violation {
            rule: "module-docs",
            file: file.to_string(),
            line: 1,
            message: "missing `//!` module documentation before the first item".to_string(),
        });
    }
    out
}

/// Lints one source file's text. `file` is the path used in reports; rule
/// applicability (accounting module, binary) is derived from it.
#[must_use]
pub fn scan_source(file: &str, src: &str) -> Vec<Violation> {
    let mut lines = mask_lines(src);
    // The per-cycle hot path lives in the simulator core; see DESIGN.md §9
    // for why allocation there is a wall-clock bug, not a style issue. The
    // ws-trace sinks (`TraceSink::record` in gpu-sim, `DecisionAudit::record`
    // in core) are held to the same bar: recording must never allocate, so
    // tracing stays zero-cost when off and O(1)-amortized when on.
    if file.contains("crates/gpu-sim/src") || file.ends_with("crates/core/src/audit.rs") {
        mark_tick_regions(&mut lines);
    }
    let name = Path::new(file)
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("");
    let is_bin = file.contains("/bin/");
    let check_casts = ACCOUNTING_MODULES.contains(&name);
    // The analyzer crate (including its gate binary) and the water-filling
    // kernel must not panic on malformed input: they *are* the checkers.
    let check_index =
        file.contains("crates/analysis/") || file.ends_with("crates/core/src/waterfill.rs");
    // The execution layer is the only place threads are created; everything
    // it spawns must be scope-checked.
    let check_spawn = file.contains("crates/exec/");
    scan_masked(file, &lines, !is_bin, check_casts, check_index, check_spawn)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every library source under `<root>/crates/*/src` and `<root>/src`,
/// returning findings sorted by path and line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs_files(&root_src, &mut files)?;
    }
    files.sort();
    let mut violations = Vec::new();
    for path in files {
        let text = fs::read_to_string(&path)?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(scan_source(&label, &text));
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_found(file: &str, src: &str) -> Vec<&'static str> {
        scan_source(file, src).into_iter().map(|v| v.rule).collect()
    }

    const DOC: &str = "//! Docs.\n";

    #[test]
    fn unwrap_in_library_code_is_flagged() {
        let src = format!("{DOC}fn f() {{ let x = Some(1).unwrap(); }}\n");
        let v = scan_source("crates/x/src/a.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unwrap");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn expect_is_flagged_and_named() {
        let src = format!("{DOC}fn f() {{ std::fs::read(\"x\").expect(\"boom\"); }}\n");
        let v = scan_source("crates/x/src/a.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unwrap");
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src =
            format!("{DOC}fn f() {{ let _ = None.unwrap_or(1) + Some(2).unwrap_or_default(); }}\n");
        assert!(rules_found("crates/x/src/a.rs", &src).is_empty());
    }

    #[test]
    fn unwrap_inside_cfg_test_is_fine() {
        let src = format!(
            "{DOC}fn lib() {{}}\n\n#[cfg(test)]\nmod tests {{\n    #[test]\n    fn t() {{ \
             Some(1).unwrap(); }}\n}}\n"
        );
        assert!(rules_found("crates/x/src/a.rs", &src).is_empty());
    }

    #[test]
    fn unwrap_after_cfg_test_region_is_flagged() {
        let src = format!(
            "{DOC}#[cfg(test)]\nmod tests {{\n    fn t() {{ Some(1).unwrap(); }}\n}}\n\
             fn lib() {{ Some(1).unwrap(); }}\n"
        );
        let v = scan_source("crates/x/src/a.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 6, "the post-module unwrap, not the test one");
    }

    #[test]
    fn unwrap_in_string_or_comment_is_fine() {
        let src = format!(
            "{DOC}fn f() {{\n    // calling .unwrap() here would be wrong\n    let _ = \
             \".unwrap()\";\n}}\n"
        );
        assert!(rules_found("crates/x/src/a.rs", &src).is_empty());
    }

    #[test]
    fn unwrap_in_binary_is_fine() {
        let src = format!("{DOC}fn main() {{ std::env::args().next().unwrap(); }}\n");
        assert!(rules_found("crates/x/src/bin/tool.rs", &src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_same_line_and_previous_line() {
        let same = format!("{DOC}fn f() {{ Some(1).unwrap(); }} // xtask-allow: no-unwrap\n");
        assert!(rules_found("crates/x/src/a.rs", &same).is_empty());
        let above = format!(
            "{DOC}// invariant: always present; xtask-allow: no-unwrap\nfn f() {{ \
             Some(1).unwrap(); }}\n"
        );
        assert!(rules_found("crates/x/src/a.rs", &above).is_empty());
    }

    #[test]
    fn lossy_cast_flagged_only_in_accounting_modules() {
        let src = format!("{DOC}fn f(x: u64) -> u32 {{ x as u32 }}\n");
        let v = scan_source("crates/x/src/alloc.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-lossy-cast");
        assert!(rules_found("crates/x/src/other.rs", &src).is_empty());
    }

    #[test]
    fn widening_as_f64_is_fine_in_accounting_modules() {
        let src = format!("{DOC}fn f(x: u32) -> f64 {{ x as f64 }}\n");
        assert!(rules_found("crates/x/src/stats.rs", &src).is_empty());
    }

    #[test]
    fn float_eq_flagged() {
        let src = format!("{DOC}fn f(x: f64) -> bool {{ x == 0.5 }}\n");
        let v = scan_source("crates/x/src/a.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-float-eq");
    }

    #[test]
    fn float_ne_and_literal_on_left_flagged() {
        let src = format!("{DOC}fn f(x: f64) -> bool {{ 1e-9 != x }}\n");
        assert_eq!(rules_found("crates/x/src/a.rs", &src), ["no-float-eq"]);
    }

    #[test]
    fn integer_eq_is_fine() {
        let src = format!("{DOC}fn f(x: u32) -> bool {{ x == 5 && x != 7 }}\n");
        assert!(rules_found("crates/x/src/a.rs", &src).is_empty());
    }

    #[test]
    fn raw_spawn_flagged_only_in_exec_crate() {
        let src = format!("{DOC}fn f() {{ std::thread::spawn(|| ()); }}\n");
        let v = scan_source("crates/exec/src/lib.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unchecked-spawn");
        assert!(rules_found("crates/core/src/runner.rs", &src).is_empty());
    }

    #[test]
    fn discarded_join_flagged_in_exec_crate() {
        let dropped = format!("{DOC}fn f(h: std::thread::JoinHandle<()>) {{ h.join().ok(); }}\n");
        assert_eq!(
            rules_found("crates/exec/src/lib.rs", &dropped),
            ["no-unchecked-spawn"]
        );
        let let_bound =
            format!("{DOC}fn f(h: std::thread::JoinHandle<()>) {{ let _ = h.join(); }}\n");
        assert_eq!(
            rules_found("crates/exec/src/lib.rs", &let_bound),
            ["no-unchecked-spawn"]
        );
    }

    #[test]
    fn scoped_spawn_is_fine_in_exec_crate() {
        let src =
            format!("{DOC}fn f() {{ std::thread::scope(|scope| {{ scope.spawn(|| ()); }}); }}\n");
        assert!(rules_found("crates/exec/src/lib.rs", &src).is_empty());
        let suppressed = format!(
            "{DOC}fn f() {{ std::thread::spawn(|| ()); }} // xtask-allow: no-unchecked-spawn\n"
        );
        assert!(rules_found("crates/exec/src/lib.rs", &suppressed).is_empty());
    }

    #[test]
    fn index_expression_flagged_only_in_scoped_files() {
        let src = format!("{DOC}fn f(xs: &[u32], i: usize) -> u32 {{ xs[i] }}\n");
        let v = scan_source("crates/analysis/src/rules.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-index-panic");
        assert!(rules_found("crates/gpu-sim/src/sm.rs", &src).is_empty());
        let wf = scan_source("crates/core/src/waterfill.rs", &src);
        assert_eq!(wf.len(), 1, "waterfill.rs is in scope");
    }

    #[test]
    fn index_rule_spares_literals_patterns_types_and_macros() {
        let src = format!(
            "{DOC}fn f() -> [u32; 2] {{\n    let [a, b] = [1u32, 2];\n    let _v = \
             vec![a];\n    let _s: &[u32] = &_v;\n    return [a, b];\n}}\n\
             #[derive(Debug)]\nstruct S;\n"
        );
        assert!(
            rules_found("crates/analysis/src/x.rs", &src).is_empty(),
            "{:?}",
            scan_source("crates/analysis/src/x.rs", &src)
        );
    }

    #[test]
    fn chained_and_call_result_indexing_flagged() {
        let src = format!("{DOC}fn f(m: &Vec<Vec<u32>>) -> u32 {{ make(m)[0] + m[1][2] }}\n");
        let v = scan_source("crates/analysis/src/x.rs", &src);
        assert_eq!(v.len(), 3, "call-result, outer, and inner index: {v:?}");
    }

    #[test]
    fn index_rule_applies_to_analysis_bins_but_allows_suppression() {
        let src = format!("{DOC}fn main() {{ let v = vec![1]; let _ = v[0]; }}\n");
        let v = scan_source("crates/analysis/src/bin/verify-workloads.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-index-panic");
        let ok = format!(
            "{DOC}fn main() {{ let v = vec![1]; let _ = v[0]; }} // xtask-allow: no-index-panic\n"
        );
        assert!(rules_found("crates/analysis/src/bin/verify-workloads.rs", &ok).is_empty());
    }

    #[test]
    fn tick_alloc_flagged_only_inside_tick_path_fns() {
        let src = format!(
            "{DOC}impl Sm {{\n    pub fn tick(&mut self, now: u64) {{\n        let v = \
             Vec::new();\n        drop(v);\n    }}\n    pub fn launch(&mut self) {{\n        \
             let _ = vec![1, 2];\n    }}\n}}\n"
        );
        let v = scan_source("crates/gpu-sim/src/sm.rs", &src);
        assert_eq!(v.len(), 1, "only the tick-body alloc: {v:?}");
        assert_eq!(v[0].rule, "no-tick-alloc");
        assert_eq!(v[0].line, 4);
        // Same source outside the simulator core is exempt.
        assert!(rules_found("crates/core/src/runner.rs", &src).is_empty());
    }

    #[test]
    fn tick_alloc_covers_multiline_signatures_and_all_patterns() {
        let src = format!(
            "{DOC}impl Sm {{\n    pub fn tick(\n        &mut self,\n        now: u64,\n    ) \
             {{\n        let a = xs.to_vec();\n        let b = vec![0; 4];\n        drop((a, \
             b));\n    }}\n}}\n"
        );
        let v = scan_source("crates/gpu-sim/src/sm.rs", &src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "no-tick-alloc"));
    }

    #[test]
    fn tick_alloc_suppressible_and_spares_lookalikes() {
        let ok = format!(
            "{DOC}impl Sm {{\n    pub fn on_fill(&mut self, line: u64) {{\n        // one-shot \
             resize on first fill; xtask-allow: no-tick-alloc\n        let v = Vec::new();\n        \
             drop(v);\n    }}\n}}\n"
        );
        assert!(rules_found("crates/gpu-sim/src/sm.rs", &ok).is_empty());
        // `ticker` is not `tick`; `mem::take` of an existing buffer is fine.
        let spared = format!(
            "{DOC}impl Sm {{\n    pub fn ticker(&mut self) {{\n        let _ = Vec::new();\n    \
             }}\n    pub fn tick(&mut self, now: u64) {{\n        let w = \
             std::mem::take(&mut self.buf);\n        self.buf = w;\n    }}\n}}\n"
        );
        assert!(rules_found("crates/gpu-sim/src/sm.rs", &spared).is_empty());
    }

    #[test]
    fn tick_alloc_ignores_trait_declarations() {
        let src = format!(
            "{DOC}trait Ticked {{\n    fn tick(&mut self, now: u64);\n}}\nfn mk() -> Vec<u32> {{ \
             Vec::new() }}\n"
        );
        assert!(rules_found("crates/gpu-sim/src/x.rs", &src).is_empty());
    }

    #[test]
    fn missing_module_docs_flagged() {
        let src = "fn f() {}\n";
        let v = scan_source("crates/x/src/a.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "module-docs");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn module_docs_satisfied_by_inner_doc() {
        assert!(rules_found("crates/x/src/a.rs", "//! Present.\nfn f() {}\n").is_empty());
    }

    #[test]
    fn raw_strings_and_lifetimes_do_not_confuse_masking() {
        let src = format!(
            "{DOC}fn f<'a>(x: &'a str) -> bool {{\n    let p = r\"float == 0.5 .unwrap()\";\n    \
             p.len() == 24\n}}\n"
        );
        assert!(rules_found("crates/x/src/a.rs", &src).is_empty());
    }

    #[test]
    fn multiline_string_is_masked() {
        let src = format!("{DOC}const S: &str = \"line one\n  .unwrap() inside\n\";\n");
        assert!(rules_found("crates/x/src/a.rs", &src).is_empty());
    }

    #[test]
    fn workspace_walk_reports_relative_paths() {
        // Smoke-test on the real workspace: findings (if any) must carry
        // workspace-relative paths and valid rule names.
        let root = {
            let mut d = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            d.pop();
            d.pop();
            d
        };
        let vs = lint_workspace(&root).expect("walk succeeds");
        for v in vs {
            assert!(!v.file.starts_with('/'), "relative path: {}", v.file);
            assert!(RULE_NAMES.contains(&v.rule));
        }
    }
}
