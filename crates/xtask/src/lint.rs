//! The custom static-analysis pass: simulator-specific lint rules that
//! `cargo clippy` cannot express, implemented over a real token stream
//! ([`crate::lex`]), a lightweight item parser ([`crate::items`]), and a
//! workspace call graph ([`crate::callgraph`]) so they run without any
//! external dependency.
//!
//! ## Rules
//!
//! Per-file (token-level) rules:
//!
//! * `no-unwrap` — `.unwrap()` / `.expect(...)` are forbidden in library
//!   code under `crates/*/src`. Panics in the simulator's libraries abort
//!   long experiment sweeps; fallible paths must return `Option`/`Result`
//!   (or carry an `xtask-allow` justification for genuine invariants).
//!   Tests, examples, benches, `src/bin/` binaries, and `#[cfg(test)]`
//!   modules are exempt.
//! * `no-lossy-cast` — value-truncating `as` casts (to any integer type or
//!   `f32`) are forbidden in the accounting-critical modules (`alloc.rs`,
//!   `waterfill.rs`, `resources.rs`, `stats.rs`, `mshr.rs`): a silently
//!   wrapping cast in resource bookkeeping skews every reproduced figure
//!   without failing a test. Use `From`/`try_from` or widen the type.
//! * `no-float-eq` — direct `==`/`!=` against a floating-point literal.
//!   IPC and normalized-performance values accumulate rounding error;
//!   compare with an epsilon instead.
//! * `module-docs` — every library source file must open with `//!` module
//!   documentation before its first item.
//! * `no-index-panic` — direct index expressions (`x[i]`) are forbidden in
//!   the static-analyzer crate (`crates/analysis`) and in the water-filling
//!   kernel (`crates/core/src/waterfill.rs`): both sit on the verification
//!   path, where an out-of-bounds panic would take down the very gate meant
//!   to catch malformed inputs. Use `get`/`get_mut`, iterators, or
//!   destructuring (or carry an `xtask-allow` justification).
//! * `no-unchecked-spawn` — in the execution layer (`crates/exec`), raw
//!   `thread::spawn` is forbidden (persistent workers use a named
//!   `Builder` whose handle is kept and joined on `Drop`), and discarding
//!   the result of `.join(…)`, `.spawn(…)`, `.recv(…)`, or `.try_recv(…)`
//!   (via `.ok()` or a `let _` binding) is flagged: a swallowed worker
//!   panic or channel disconnect breaks the determinism contract. The send
//!   side (`let _ = tx.send(…)`) stays allowed — a dropped receiver is
//!   routine shutdown, and completion accounting happens before the send.
//! * `determinism` — in the simulator core and the accounting layer
//!   (`crates/gpu-sim/src`, `crates/core/src`), iteration over a
//!   `HashMap`/`HashSet` (`.iter()`, `.keys()`, `.drain()`, a `for` loop
//!   over one, …), wall-clock reads (`Instant::now`, `SystemTime`),
//!   `thread::current`, and pointer-identity hashing (`ptr::hash`) are
//!   forbidden: each one lets host state leak into simulated results,
//!   breaking the byte-for-byte determinism contract (DESIGN.md §10). Use
//!   `BTreeMap`/`BTreeSet` or an index-keyed `Vec`. Waivers for this rule
//!   **require a justification** (`// <why>; xtask-allow: determinism` or
//!   `// xtask-allow: determinism -- <why>`).
//!
//! Transitive (call-graph) rules — seeded at entry points and applied to
//! every function reachable from a seed, with the concrete call chain
//! reported in the diagnostic:
//!
//! * `no-tick-alloc` — heap allocation (`Vec::new`, `vec![…]`,
//!   `…::with_capacity`, `Box::new`, `.collect()`, `.to_vec()`,
//!   `format!`, `String::from`) is forbidden in any function reachable
//!   from a per-cycle tick entry point ([`TICK_SEEDS`]) whose body lives
//!   under `crates/gpu-sim/src` or in the ws-trace audit channel
//!   `crates/core/src/audit.rs`. These run millions of times per
//!   experiment; an allocation there is invisible in tests but dominates
//!   sweep wall-clock (DESIGN.md §9). Reuse a member or caller-owned
//!   buffer (`std::mem::take` + `clear` is fine).
//! * `panic-free-accounting` — `unwrap`/`expect`, the `panic!`-family
//!   macros (`panic!`, `todo!`, `unimplemented!`, `unreachable!`), and
//!   direct index expressions are forbidden in any function reachable
//!   from the water-filling / metrics / allocator / ws-predict entry
//!   points ([`ACCOUNTING_SEEDS`]), scoped to `crates/gpu-sim/src`,
//!   `crates/core/src`, and `crates/analysis/src`: these compute the
//!   paper's headline numbers and pick the pruned sweep window, and a
//!   panic there takes down a whole sweep. `assert!` / `debug_assert!`
//!   remain fine — invariant checks are the point.
//!
//! Call-graph resolution is conservative (see [`crate::callgraph`]):
//! "reachable" over-approximates, so a finding may name a chain that a
//! human can prove dead — waive it with a justification rather than
//! narrowing the engine.
//!
//! Any finding is suppressed by a `// xtask-allow: <rule>` comment on the
//! same line or the line immediately above (for `module-docs`: on the first
//! line of the file). Multiple rules may be listed, comma-separated; the
//! `determinism` rule additionally requires the waiver to carry a
//! justification.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::callgraph::CallGraph;
use crate::items::{self, CallSite, FileItems};
use crate::lex::TokenKind;

/// Names of every rule, for help text.
pub const RULE_NAMES: [&str; 9] = [
    "no-unwrap",
    "no-lossy-cast",
    "no-float-eq",
    "module-docs",
    "no-index-panic",
    "no-unchecked-spawn",
    "no-tick-alloc",
    "determinism",
    "panic-free-accounting",
];

/// Functions on the simulator's per-cycle hot path. Every name here must be
/// reachable from [`TICK_SEEDS`] in the workspace call graph (a unit test
/// asserts it), so the transitive `no-tick-alloc` rule covers at least the
/// surface the old per-name rule did.
#[cfg_attr(not(test), allow(dead_code))]
pub const TICK_PATH_FNS: [&str; 16] = [
    "tick",
    "tick_fast_forward",
    "fast_forward",
    "on_fill",
    "on_fill_batch",
    "next_event",
    "account_skip",
    "classify_stall",
    "compute_horizon",
    "drain_completions_into",
    "take_completions",
    "record",
    "record_stall_window",
    "refresh_warp",
    "select",
    "l2_slice_tick",
];

/// Seed functions for the transitive `no-tick-alloc` rule: the per-cycle
/// entry points of the simulator core and the trace/audit record sinks.
/// Everything reachable from these inside `crates/gpu-sim/src` (plus
/// `crates/core/src/audit.rs`) is tick-path.
pub const TICK_SEEDS: [(&str, &str); 12] = [
    ("Gpu", "tick"),
    ("Gpu", "fast_forward"),
    ("Gpu", "tick_fast_forward"),
    ("Sm", "tick"),
    ("Sm", "on_fill"),
    ("Sm", "on_fill_batch"),
    ("Sm", "take_completions"),
    ("Sm", "drain_completions_into"),
    ("MemSubsystem", "tick"),
    ("TraceSink", "record"),
    ("TraceSink", "record_stall_window"),
    ("DecisionAudit", "record"),
];

/// Seed functions for the transitive `panic-free-accounting` rule: the
/// water-filling partitioner, the headline metrics, the resource
/// allocator, the ws-predict analyzer, and the ws-store curve cache — the
/// call trees that compute the paper's numbers, decide how much of the
/// sweep gets sampled, and serve memoized curves on the decision path.
pub const ACCOUNTING_SEEDS: [(Option<&str>, &str); 24] = [
    (Some("LinearAllocator"), "alloc"),
    (Some("LinearAllocator"), "alloc_in_window"),
    (Some("LinearAllocator"), "free"),
    (Some("LinearAllocator"), "free_in_window"),
    (Some("LinearAllocator"), "largest_free"),
    (Some("LinearAllocator"), "largest_free_in_window"),
    (Some("SmResources"), "try_alloc"),
    (Some("SmResources"), "free"),
    (Some("SweepPlan"), "from_predictions"),
    (None, "water_fill"),
    (None, "water_fill_traced"),
    (None, "brute_force"),
    (None, "speedups"),
    (None, "fairness"),
    (None, "antt"),
    (None, "system_throughput"),
    (None, "predict_kernel"),
    (None, "predict_curve"),
    (None, "extract_features"),
    (None, "miss_profile"),
    (None, "accept_pruned"),
    (Some("CurveStore"), "lookup"),
    (Some("CurveStore"), "insert"),
    (Some("CurveStore"), "evict_oldest"),
];

/// Method names whose call on a `HashMap`/`HashSet` binding observes (or
/// depends on) the container's nondeterministic iteration order.
const UNORDERED_ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Keywords that may legitimately precede a `[` starting an array literal or
/// slice pattern; a `[` after one of these is not an index expression.
const INDEX_EXEMPT_KEYWORDS: [&str; 14] = [
    "return", "in", "let", "mut", "ref", "box", "move", "else", "match", "break", "as", "dyn",
    "const", "static",
];

/// File names (within `crates/*/src`) whose arithmetic is load-bearing for
/// the paper's accounting; `no-lossy-cast` applies only to these.
const ACCOUNTING_MODULES: [&str; 5] = [
    "alloc.rs",
    "waterfill.rs",
    "resources.rs",
    "stats.rs",
    "mshr.rs",
];

/// Cast targets considered lossy. `f64` is deliberately absent: every
/// integer the simulator casts into `f64` (cycle counts, CTA counts) is far
/// below 2^53.
const LOSSY_CAST_TARGETS: [&str; 13] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Path as reported (workspace-relative when walking the workspace).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-oriented explanation.
    pub message: String,
    /// For transitive rules: the call chain from a seed to the function
    /// containing the finding (qualified names, seed first). Empty for
    /// per-file rules.
    pub chain: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        if !self.chain.is_empty() {
            write!(f, " [chain: {}]", self.chain.join(" -> "))?;
        }
        Ok(())
    }
}

/// Read-only accessor over a file's significant tokens.
struct Toks<'a> {
    src: &'a str,
    items: &'a FileItems,
}

impl<'a> Toks<'a> {
    fn len(&self) -> usize {
        self.items.sig.len()
    }

    fn text(&self, s: usize) -> &'a str {
        self.items
            .sig
            .get(s)
            .and_then(|&i| self.items.tokens.get(i))
            .map_or("", |t| t.text(self.src))
    }

    fn kind(&self, s: usize) -> Option<TokenKind> {
        self.items
            .sig
            .get(s)
            .and_then(|&i| self.items.tokens.get(i))
            .map(|t| t.kind)
    }

    fn line(&self, s: usize) -> u32 {
        self.items
            .sig
            .get(s)
            .and_then(|&i| self.items.tokens.get(i))
            .map_or(0, |t| t.line)
    }
}

/// Pushes a finding unless a waiver covers it. `determinism` waivers must
/// carry a justification; a bare one converts the finding instead of
/// silencing it.
fn emit(
    out: &mut Vec<Violation>,
    items: &FileItems,
    rule: &'static str,
    file: &str,
    line: u32,
    message: String,
    chain: Vec<String>,
) {
    if let Some(allow) = items.allow_for(line, rule) {
        if rule == "determinism" && allow.justification.is_none() {
            out.push(Violation {
                rule,
                file: file.to_string(),
                line: line as usize,
                message: format!(
                    "{message} — the waiver is present but `determinism` waivers require a \
                     justification (`// <why>; xtask-allow: determinism` or \
                     `// xtask-allow: determinism -- <why>`)"
                ),
                chain,
            });
        }
        return;
    }
    out.push(Violation {
        rule,
        file: file.to_string(),
        line: line as usize,
        message,
        chain,
    });
}

/// Whether the `[` at sig index `i` begins an index expression (something
/// panickable) rather than an array literal, slice pattern, type, attribute,
/// or macro delimiter.
fn is_index_expression(t: &Toks<'_>, i: usize) -> bool {
    let Some(j) = i.checked_sub(1) else {
        return false;
    };
    let prev = t.text(j);
    match t.kind(j) {
        Some(TokenKind::Ident) => !INDEX_EXEMPT_KEYWORDS.contains(&prev),
        Some(TokenKind::Punct) => prev == ")" || prev == "]",
        _ => false,
    }
}

/// Whether a sig-index neighbourhood of a `==`/`!=` at `i` contains a float
/// literal operand (looking through a unary minus on the right).
fn float_operand(t: &Toks<'_>, i: usize) -> bool {
    let left = i
        .checked_sub(1)
        .is_some_and(|j| t.kind(j) == Some(TokenKind::Float));
    let mut r = i + 1;
    if t.text(r) == "-" {
        r += 1;
    }
    left || t.kind(r) == Some(TokenKind::Float)
}

/// The per-file (token-level) rules.
fn per_file_rules(label: &str, src: &str, items: &FileItems, out: &mut Vec<Violation>) {
    let t = Toks { src, items };
    let file_name = Path::new(label)
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("");
    let is_bin = label.contains("/bin/");
    let check_unwrap = !is_bin;
    let check_casts = ACCOUNTING_MODULES.contains(&file_name);
    let check_index =
        label.contains("crates/analysis/") || label.ends_with("crates/core/src/waterfill.rs");
    let check_spawn = label.contains("crates/exec/");
    let check_det =
        !is_bin && (label.contains("crates/gpu-sim/src") || label.contains("crates/core/src"));

    // module-docs: a `//!` must appear before the first item.
    if !items.has_module_docs && !items.sig.is_empty() {
        emit(
            out,
            items,
            "module-docs",
            label,
            1,
            "missing `//!` module documentation before the first item".to_string(),
            Vec::new(),
        );
    }

    for i in 0..t.len() {
        let line = t.line(i);
        if items.in_test(line) {
            continue;
        }
        let txt = t.text(i);
        if check_unwrap
            && txt == "."
            && matches!(t.text(i + 1), "unwrap" | "expect")
            && t.text(i + 2) == "("
        {
            emit(
                out,
                items,
                "no-unwrap",
                label,
                t.line(i + 1),
                format!(
                    "`.{}(…)` in library code; return Option/Result or justify with \
                     `// xtask-allow: no-unwrap`",
                    t.text(i + 1)
                ),
                Vec::new(),
            );
        }
        if check_casts && txt == "as" && t.kind(i) == Some(TokenKind::Ident) {
            let target = t.text(i + 1);
            if LOSSY_CAST_TARGETS.contains(&target) {
                emit(
                    out,
                    items,
                    "no-lossy-cast",
                    label,
                    line,
                    format!(
                        "lossy `as {target}` cast in accounting-critical module; use \
                         `From`/`try_from` or widen, or justify with \
                         `// xtask-allow: no-lossy-cast`"
                    ),
                    Vec::new(),
                );
            }
        }
        if matches!(txt, "==" | "!=") && float_operand(&t, i) {
            emit(
                out,
                items,
                "no-float-eq",
                label,
                line,
                format!(
                    "direct floating-point `{txt}` comparison; use an epsilon (rounding \
                     error accumulates in IPC/perf values) or justify with \
                     `// xtask-allow: no-float-eq`"
                ),
                Vec::new(),
            );
        }
        if check_index && txt == "[" && is_index_expression(&t, i) {
            emit(
                out,
                items,
                "no-index-panic",
                label,
                line,
                "direct index expression can panic on the verification path; use \
                 `get`/iterators/destructuring or justify with \
                 `// xtask-allow: no-index-panic`"
                    .to_string(),
                Vec::new(),
            );
        }
        if check_spawn {
            if txt == "thread" && t.text(i + 1) == "::" && t.text(i + 2) == "spawn" {
                emit(
                    out,
                    items,
                    "no-unchecked-spawn",
                    label,
                    line,
                    "raw `thread::spawn` in the execution layer; use a named \
                     `thread::Builder` whose handle is kept and joined on shutdown \
                     (or a `std::thread::scope`), or justify with \
                     `// xtask-allow: no-unchecked-spawn`"
                        .to_string(),
                    Vec::new(),
                );
            }
            let method = t.text(i + 1);
            if txt == "."
                && matches!(method, "join" | "spawn" | "recv" | "try_recv")
                && t.text(i + 2) == "("
            {
                // `.join().ok()`, `.spawn(f).ok()`, `.recv().ok()` — scan to
                // the matching close paren, then look for a swallowing `.ok`.
                let mut depth = 0usize;
                let mut j = i + 2;
                let close = loop {
                    match t.text(j) {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break Some(j);
                            }
                        }
                        "" => break None,
                        _ => {}
                    }
                    j += 1;
                };
                let swallowed =
                    close.is_some_and(|c| t.text(c + 1) == "." && t.text(c + 2) == "ok");
                // `let _ = handle.join(…)` — walk back to the statement start.
                let mut discarded = false;
                let mut j = i;
                while j > 0 {
                    j -= 1;
                    match t.text(j) {
                        ";" | "{" | "}" => break,
                        "let" if t.text(j + 1) == "_" => {
                            discarded = true;
                            break;
                        }
                        _ => {}
                    }
                }
                if swallowed || discarded {
                    let what = match method {
                        "join" => "join handle result",
                        "spawn" => "spawn handle",
                        _ => "completion-channel receive",
                    };
                    emit(
                        out,
                        items,
                        "no-unchecked-spawn",
                        label,
                        line,
                        format!(
                            "discarded {what} in the execution layer; a swallowed worker \
                             panic or channel disconnect breaks the determinism contract — \
                             handle it or justify with `// xtask-allow: no-unchecked-spawn`"
                        ),
                        Vec::new(),
                    );
                }
            }
        }
        if check_det {
            let wall_clock = (txt == "Instant" && t.text(i + 1) == "::" && t.text(i + 2) == "now")
                || txt == "SystemTime";
            let host_thread =
                txt == "thread" && t.text(i + 1) == "::" && t.text(i + 2) == "current";
            let ptr_hash = txt == "ptr" && t.text(i + 1) == "::" && t.text(i + 2) == "hash";
            if wall_clock || host_thread || ptr_hash {
                let what = if wall_clock {
                    "wall-clock time"
                } else if host_thread {
                    "host thread identity"
                } else {
                    "pointer-identity hashing"
                };
                emit(
                    out,
                    items,
                    "determinism",
                    label,
                    line,
                    format!(
                        "`{txt}` leaks {what} into simulator state, breaking byte-for-byte \
                         determinism; derive the value from simulated state instead"
                    ),
                    Vec::new(),
                );
            }
        }
    }

    if check_det {
        determinism_iteration_rules(label, items, out);
    }
}

/// The iteration-order half of the `determinism` rule: method calls and
/// `for` loops over bindings declared as `HashMap`/`HashSet`.
fn determinism_iteration_rules(label: &str, items: &FileItems, out: &mut Vec<Violation>) {
    if items.hash_idents.is_empty() {
        return;
    }
    // One finding per line: a `for (k, v) in m.iter()` header would
    // otherwise fire twice (once for the call, once for the loop).
    let mut flagged: BTreeSet<u32> = BTreeSet::new();
    for f in &items.fns {
        if f.in_test {
            continue;
        }
        for c in &f.calls {
            if !c.is_method || !UNORDERED_ITER_METHODS.contains(&c.name()) {
                continue;
            }
            let Some(recv) = &c.recv else { continue };
            if items.hash_idents.contains(recv) && flagged.insert(c.line) {
                emit(
                    out,
                    items,
                    "determinism",
                    label,
                    c.line,
                    format!(
                        "`.{}()` observes the nondeterministic iteration order of \
                         `HashMap`/`HashSet` binding `{recv}`; use `BTreeMap`/`BTreeSet` \
                         or an index-keyed `Vec`",
                        c.name()
                    ),
                    Vec::new(),
                );
            }
        }
    }
    for fl in &items.for_loops {
        if fl.in_test || !flagged.insert(fl.line) {
            continue;
        }
        if let Some(ident) = fl
            .expr_idents
            .iter()
            .find(|id| items.hash_idents.contains(*id))
        {
            emit(
                out,
                items,
                "determinism",
                label,
                fl.line,
                format!(
                    "`for` loop iterates `HashMap`/`HashSet` binding `{ident}` in \
                     nondeterministic order; use `BTreeMap`/`BTreeSet` or an index-keyed \
                     `Vec`"
                ),
                Vec::new(),
            );
        }
    }
}

/// The allocation pattern a call site matches on the tick path, if any,
/// rendered for the diagnostic.
fn tick_alloc_pattern(c: &CallSite) -> Option<String> {
    if c.is_macro {
        return matches!(c.name(), "vec!" | "format!").then(|| format!("{}(…)", c.path));
    }
    if c.is_method {
        return matches!(c.name(), "to_vec" | "collect").then(|| format!(".{}()", c.path));
    }
    let name = c.name();
    let qual = c.path.rsplit("::").nth(1).unwrap_or("");
    let hit = (name == "with_capacity" && c.path.contains("::"))
        || matches!(
            (qual, name),
            ("Vec", "new") | ("Box", "new") | ("String", "from")
        );
    hit.then(|| format!("{}(…)", c.path))
}

/// The panic pattern a call site matches in accounting code, if any.
fn panic_pattern(c: &CallSite) -> Option<String> {
    if c.is_macro {
        return matches!(
            c.name(),
            "panic!" | "todo!" | "unimplemented!" | "unreachable!"
        )
        .then(|| format!("{}(…)", c.path));
    }
    if c.is_method {
        return matches!(c.name(), "unwrap" | "expect").then(|| format!(".{}()", c.path));
    }
    None
}

/// The transitive rules: builds the workspace call graph, runs reachability
/// from each seed set, and scans the bodies of reached functions.
fn graph_rules(
    files: &[(String, String)],
    parsed: &[(String, FileItems)],
    out: &mut Vec<Violation>,
) {
    let graph = CallGraph::build(parsed);

    // no-tick-alloc: allocation reachable from a per-cycle entry point.
    let mut seeds = Vec::new();
    for (ty, name) in TICK_SEEDS {
        seeds.extend(graph.find(parsed, Some(ty), name));
    }
    let reach = graph.reachable(&seeds);
    for id in reach.iter() {
        let node = &graph.nodes[id];
        let Some((label, items)) = parsed.get(node.file) else {
            continue;
        };
        if !(label.contains("crates/gpu-sim/src") || label.ends_with("crates/core/src/audit.rs")) {
            continue;
        }
        let Some(f) = items.fns.get(node.fn_idx) else {
            continue;
        };
        let chain = reach.chain(&graph, id);
        for c in &f.calls {
            if let Some(what) = tick_alloc_pattern(c) {
                emit(
                    out,
                    items,
                    "no-tick-alloc",
                    label,
                    c.line,
                    format!(
                        "`{what}` allocates inside a function reachable from a per-cycle \
                         tick entry point; reuse a member or caller-owned buffer, or \
                         justify with `// xtask-allow: no-tick-alloc`"
                    ),
                    chain.clone(),
                );
            }
        }
    }

    // panic-free-accounting: panics reachable from the accounting entry
    // points.
    let mut seeds = Vec::new();
    for (ty, name) in ACCOUNTING_SEEDS {
        seeds.extend(graph.find(parsed, ty, name));
    }
    let reach = graph.reachable(&seeds);
    for id in reach.iter() {
        let node = &graph.nodes[id];
        let Some((label, items)) = parsed.get(node.file) else {
            continue;
        };
        if label.contains("/bin/")
            || !(label.contains("crates/gpu-sim/src")
                || label.contains("crates/core/src")
                || label.contains("crates/analysis/src"))
        {
            continue;
        }
        let Some(f) = items.fns.get(node.fn_idx) else {
            continue;
        };
        let chain = reach.chain(&graph, id);
        for c in &f.calls {
            if let Some(what) = panic_pattern(c) {
                emit(
                    out,
                    items,
                    "panic-free-accounting",
                    label,
                    c.line,
                    format!(
                        "`{what}` can panic inside the accounting call tree; return \
                         Option/Result (or justify with \
                         `// xtask-allow: panic-free-accounting`)"
                    ),
                    chain.clone(),
                );
            }
        }
        // Direct index expressions within the body's line span.
        let Some((body_start, body_end)) = f.body_lines else {
            continue;
        };
        let Some(src) = files.get(node.file).map(|(_, s)| s.as_str()) else {
            continue;
        };
        let t = Toks { src, items };
        for i in 0..t.len() {
            let line = t.line(i);
            if line < body_start || line > body_end || items.in_test(line) {
                continue;
            }
            if t.text(i) == "[" && is_index_expression(&t, i) {
                emit(
                    out,
                    items,
                    "panic-free-accounting",
                    label,
                    line,
                    "direct index expression can panic inside the accounting call tree; \
                     use `get`/iterators/destructuring or justify with \
                     `// xtask-allow: panic-free-accounting`"
                        .to_string(),
                    chain.clone(),
                );
            }
        }
    }
}

/// Lints a set of (path label, source text) files as one workspace: all
/// per-file rules plus the call-graph rules, findings sorted by path, line,
/// and rule, deduplicated.
#[must_use]
pub fn lint_files(files: &[(String, String)]) -> Vec<Violation> {
    let parsed: Vec<(String, FileItems)> = files
        .iter()
        .map(|(p, s)| (p.clone(), items::parse(s)))
        .collect();
    let mut out = Vec::new();
    for ((label, src), (_, items)) in files.iter().zip(&parsed) {
        per_file_rules(label, src, items, &mut out);
    }
    graph_rules(files, &parsed, &mut out);
    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    // Overlapping function bodies (nested fns) can make the transitive
    // body scan visit a line twice; the chain may differ, the finding does
    // not. Per-file rules keep one finding per expression, so only the
    // transitive rule deduplicates.
    out.dedup_by(|a, b| {
        a.rule == "panic-free-accounting"
            && a.rule == b.rule
            && a.file == b.file
            && a.line == b.line
            && a.message == b.message
    });
    out
}

/// Lints one source file's text. `file` is the path used in reports; rule
/// applicability (accounting module, binary, crate scopes) is derived from
/// it. Transitive rules see only this one file.
#[must_use]
#[cfg_attr(not(test), allow(dead_code))]
pub fn scan_source(file: &str, src: &str) -> Vec<Violation> {
    lint_files(&[(file.to_string(), src.to_string())])
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Reads every library source under `<root>/crates/*/src` and `<root>/src`
/// as (workspace-relative label, text) pairs, sorted by path.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut paths = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut paths)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs_files(&root_src, &mut paths)?;
    }
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let text = fs::read_to_string(&path)?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((label, text));
    }
    Ok(files)
}

/// Lints every library source under `<root>/crates/*/src` and `<root>/src`,
/// returning findings sorted by path and line.
#[cfg_attr(not(test), allow(dead_code))]
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    Ok(lint_files(&workspace_files(root)?))
}

/// Renders findings as JSON Lines: one `lint_report` header record followed
/// by one `violation` record per finding. Shares its string escaping with
/// the simulator's trace writer (`warped_slicer::tracefmt`).
#[must_use]
pub fn report_jsonl(violations: &[Violation], files_scanned: usize) -> String {
    use std::fmt::Write as _;
    use warped_slicer::tracefmt::esc;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"lint_report\",\"schema\":1,\"files_scanned\":{files_scanned},\
         \"violations\":{}}}",
        violations.len()
    );
    for v in violations {
        let chain: Vec<String> = v.chain.iter().map(|c| format!("\"{}\"", esc(c))).collect();
        let _ = writeln!(
            out,
            "{{\"type\":\"violation\",\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\
             \"message\":\"{}\",\"chain\":[{}]}}",
            esc(v.rule),
            esc(&v.file),
            v.line,
            esc(&v.message),
            chain.join(",")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_found(file: &str, src: &str) -> Vec<&'static str> {
        scan_source(file, src).into_iter().map(|v| v.rule).collect()
    }

    const DOC: &str = "//! Docs.\n";

    #[test]
    fn unwrap_in_library_code_is_flagged() {
        let src = format!("{DOC}fn f() {{ let x = Some(1).unwrap(); }}\n");
        let v = scan_source("crates/x/src/a.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unwrap");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn expect_is_flagged_and_named() {
        let src = format!("{DOC}fn f() {{ std::fs::read(\"x\").expect(\"boom\"); }}\n");
        let v = scan_source("crates/x/src/a.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unwrap");
        assert!(v[0].message.contains("expect"));
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src =
            format!("{DOC}fn f() {{ let _ = None.unwrap_or(1) + Some(2).unwrap_or_default(); }}\n");
        assert!(rules_found("crates/x/src/a.rs", &src).is_empty());
    }

    #[test]
    fn unwrap_inside_cfg_test_is_fine() {
        let src = format!(
            "{DOC}fn lib() {{}}\n\n#[cfg(test)]\nmod tests {{\n    #[test]\n    fn t() {{ \
             Some(1).unwrap(); }}\n}}\n"
        );
        assert!(rules_found("crates/x/src/a.rs", &src).is_empty());
    }

    #[test]
    fn unwrap_after_cfg_test_region_is_flagged() {
        let src = format!(
            "{DOC}#[cfg(test)]\nmod tests {{\n    fn t() {{ Some(1).unwrap(); }}\n}}\n\
             fn lib() {{ Some(1).unwrap(); }}\n"
        );
        let v = scan_source("crates/x/src/a.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 6, "the post-module unwrap, not the test one");
    }

    #[test]
    fn unwrap_in_string_or_comment_is_fine() {
        let src = format!(
            "{DOC}fn f() {{\n    // calling .unwrap() here would be wrong\n    let _ = \
             \".unwrap()\";\n}}\n"
        );
        assert!(rules_found("crates/x/src/a.rs", &src).is_empty());
    }

    #[test]
    fn unwrap_in_binary_is_fine() {
        let src = format!("{DOC}fn main() {{ std::env::args().next().unwrap(); }}\n");
        assert!(rules_found("crates/x/src/bin/tool.rs", &src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_same_line_and_previous_line() {
        let same = format!("{DOC}fn f() {{ Some(1).unwrap(); }} // xtask-allow: no-unwrap\n");
        assert!(rules_found("crates/x/src/a.rs", &same).is_empty());
        let above = format!(
            "{DOC}// invariant: always present; xtask-allow: no-unwrap\nfn f() {{ \
             Some(1).unwrap(); }}\n"
        );
        assert!(rules_found("crates/x/src/a.rs", &above).is_empty());
    }

    #[test]
    fn lossy_cast_flagged_only_in_accounting_modules() {
        let src = format!("{DOC}fn f(x: u64) -> u32 {{ x as u32 }}\n");
        let v = scan_source("crates/x/src/alloc.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-lossy-cast");
        assert!(rules_found("crates/x/src/other.rs", &src).is_empty());
    }

    #[test]
    fn widening_as_f64_is_fine_in_accounting_modules() {
        let src = format!("{DOC}fn f(x: u32) -> f64 {{ x as f64 }}\n");
        assert!(rules_found("crates/x/src/stats.rs", &src).is_empty());
    }

    #[test]
    fn float_eq_flagged() {
        let src = format!("{DOC}fn f(x: f64) -> bool {{ x == 0.5 }}\n");
        let v = scan_source("crates/x/src/a.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-float-eq");
    }

    #[test]
    fn float_ne_negative_and_literal_on_left_flagged() {
        let src = format!("{DOC}fn f(x: f64) -> bool {{ 1e-9 != x || x == -0.5 }}\n");
        assert_eq!(
            rules_found("crates/x/src/a.rs", &src),
            ["no-float-eq", "no-float-eq"]
        );
    }

    #[test]
    fn integer_eq_is_fine() {
        let src = format!("{DOC}fn f(x: u32) -> bool {{ x == 5 && x != 7 }}\n");
        assert!(rules_found("crates/x/src/a.rs", &src).is_empty());
    }

    #[test]
    fn raw_spawn_flagged_only_in_exec_crate() {
        let src = format!("{DOC}fn f() {{ std::thread::spawn(|| ()); }}\n");
        let v = scan_source("crates/exec/src/lib.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unchecked-spawn");
        assert!(rules_found("crates/workloads/src/runner.rs", &src).is_empty());
    }

    #[test]
    fn discarded_join_flagged_in_exec_crate() {
        let dropped = format!("{DOC}fn f(h: std::thread::JoinHandle<()>) {{ h.join().ok(); }}\n");
        assert_eq!(
            rules_found("crates/exec/src/lib.rs", &dropped),
            ["no-unchecked-spawn"]
        );
        let let_bound =
            format!("{DOC}fn f(h: std::thread::JoinHandle<()>) {{ let _ = h.join(); }}\n");
        assert_eq!(
            rules_found("crates/exec/src/lib.rs", &let_bound),
            ["no-unchecked-spawn"]
        );
    }

    #[test]
    fn scoped_spawn_is_fine_in_exec_crate() {
        let src =
            format!("{DOC}fn f() {{ std::thread::scope(|scope| {{ scope.spawn(|| ()); }}); }}\n");
        assert!(rules_found("crates/exec/src/lib.rs", &src).is_empty());
        let suppressed = format!(
            "{DOC}fn f() {{ std::thread::spawn(|| ()); }} // xtask-allow: no-unchecked-spawn\n"
        );
        assert!(rules_found("crates/exec/src/lib.rs", &suppressed).is_empty());
    }

    #[test]
    fn discarded_spawn_and_swallowed_recv_flagged_in_exec_crate() {
        let spawn =
            format!("{DOC}fn f() {{ let _ = std::thread::Builder::new().spawn(|| ()); }}\n");
        assert_eq!(
            rules_found("crates/exec/src/lib.rs", &spawn),
            ["no-unchecked-spawn"]
        );
        let recv = format!("{DOC}fn f(rx: std::sync::mpsc::Receiver<u32>) {{ rx.recv().ok(); }}\n");
        assert_eq!(
            rules_found("crates/exec/src/lib.rs", &recv),
            ["no-unchecked-spawn"]
        );
        // The send side is allowed to discard: a dropped receiver is
        // routine shutdown. Matched receives are fine too.
        let send =
            format!("{DOC}fn f(tx: std::sync::mpsc::Sender<u32>) {{ let _ = tx.send(1); }}\n");
        assert!(rules_found("crates/exec/src/lib.rs", &send).is_empty());
        let matched = format!(
            "{DOC}fn f(rx: std::sync::mpsc::Receiver<u32>) -> u32 {{ rx.recv().unwrap_or(0) }}\n"
        );
        assert!(rules_found("crates/exec/src/lib.rs", &matched).is_empty());
    }

    #[test]
    fn index_expression_flagged_only_in_scoped_files() {
        let src = format!("{DOC}fn f(xs: &[u32], i: usize) -> u32 {{ xs[i] }}\n");
        let v = scan_source("crates/analysis/src/rules.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-index-panic");
        assert!(rules_found("crates/gpu-sim/src/lib.rs", &src).is_empty());
        let wf = scan_source("crates/core/src/waterfill.rs", &src);
        assert!(
            wf.iter().any(|v| v.rule == "no-index-panic"),
            "waterfill.rs is in scope: {wf:?}"
        );
    }

    #[test]
    fn index_rule_spares_literals_patterns_types_and_macros() {
        let src = format!(
            "{DOC}fn f() -> [u32; 2] {{\n    let [a, b] = [1u32, 2];\n    let _v = \
             vec![a];\n    let _s: &[u32] = &_v;\n    return [a, b];\n}}\n\
             #[derive(Debug)]\nstruct S;\n"
        );
        assert!(
            rules_found("crates/analysis/src/x.rs", &src).is_empty(),
            "{:?}",
            scan_source("crates/analysis/src/x.rs", &src)
        );
    }

    #[test]
    fn chained_and_call_result_indexing_flagged() {
        let src = format!("{DOC}fn f(m: &Vec<Vec<u32>>) -> u32 {{ make(m)[0] + m[1][2] }}\n");
        let v = scan_source("crates/analysis/src/x.rs", &src);
        assert_eq!(v.len(), 3, "call-result, outer, and inner index: {v:?}");
    }

    #[test]
    fn index_rule_applies_to_analysis_bins_but_allows_suppression() {
        let src = format!("{DOC}fn main() {{ let v = vec![1]; let _ = v[0]; }}\n");
        let v = scan_source("crates/analysis/src/bin/verify-workloads.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-index-panic");
        let ok = format!(
            "{DOC}fn main() {{ let v = vec![1]; let _ = v[0]; }} // xtask-allow: no-index-panic\n"
        );
        assert!(rules_found("crates/analysis/src/bin/verify-workloads.rs", &ok).is_empty());
    }

    #[test]
    fn tick_alloc_flagged_in_seed_bodies() {
        let src = format!(
            "{DOC}impl Sm {{\n    pub fn tick(&mut self, now: u64) {{\n        let v = \
             Vec::new();\n        drop(v);\n    }}\n    pub fn launch(&mut self) {{\n        \
             let _ = vec![1, 2];\n    }}\n}}\n"
        );
        let v = scan_source("crates/gpu-sim/src/sm.rs", &src);
        assert_eq!(v.len(), 1, "only the tick-body alloc: {v:?}");
        assert_eq!(v[0].rule, "no-tick-alloc");
        assert_eq!(v[0].line, 4);
        assert_eq!(v[0].chain, ["Sm::tick"]);
        // Same source outside the simulator core is exempt.
        assert!(rules_found("crates/workloads/src/suite.rs", &src).is_empty());
    }

    #[test]
    fn tick_alloc_is_transitive_and_reports_the_chain() {
        let src = format!(
            "{DOC}impl Sm {{\n    pub fn tick(&mut self, now: u64) {{\n        \
             self.issue_stage(now);\n    }}\n    fn issue_stage(&mut self, now: u64) {{\n        \
             scratch(now);\n    }}\n}}\nfn scratch(now: u64) {{\n    let _ = \
             format!(\"{{now}}\");\n}}\nfn cold() {{\n    let _ = format!(\"fine\");\n}}\n"
        );
        let v = scan_source("crates/gpu-sim/src/sm.rs", &src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-tick-alloc");
        assert_eq!(v[0].chain, ["Sm::tick", "Sm::issue_stage", "scratch"]);
    }

    #[test]
    fn tick_alloc_widened_patterns_fire() {
        let src = format!(
            "{DOC}impl Gpu {{\n    pub fn tick(&mut self) {{\n        let a = \
             Vec::with_capacity(4);\n        let b = Box::new(1u32);\n        let c: Vec<u32> = \
             a.iter().copied().collect();\n        let d = String::from(\"x\");\n        let e = \
             c.to_vec();\n        drop((b, d, e));\n    }}\n}}\n"
        );
        let v = scan_source("crates/gpu-sim/src/gpu.rs", &src);
        let hit: Vec<&str> = v.iter().map(|x| x.rule).collect();
        assert_eq!(
            v.len(),
            5,
            "with_capacity, Box::new, collect, String::from, to_vec: {v:?}"
        );
        assert!(hit.iter().all(|r| *r == "no-tick-alloc"));
    }

    #[test]
    fn tick_alloc_suppressible_and_spares_lookalikes() {
        let ok = format!(
            "{DOC}impl Sm {{\n    pub fn on_fill(&mut self, line: u64) {{\n        // one-shot \
             resize on first fill; xtask-allow: no-tick-alloc\n        let v = Vec::new();\n        \
             drop(v);\n    }}\n}}\n"
        );
        assert!(rules_found("crates/gpu-sim/src/sm.rs", &ok).is_empty());
        // `ticker` is not a seed; `mem::take` of an existing buffer is fine.
        let spared = format!(
            "{DOC}impl Sm {{\n    pub fn ticker(&mut self) {{\n        let _ = Vec::new();\n    \
             }}\n    pub fn tick(&mut self, now: u64) {{\n        let w = \
             std::mem::take(&mut self.buf);\n        self.buf = w;\n    }}\n}}\n"
        );
        assert!(rules_found("crates/gpu-sim/src/sm.rs", &spared).is_empty());
    }

    #[test]
    fn tick_alloc_ignores_trait_declarations() {
        let src = format!(
            "{DOC}trait Ticked {{\n    fn tick(&mut self, now: u64);\n}}\nfn mk() -> Vec<u32> {{ \
             Vec::new() }}\n"
        );
        assert!(rules_found("crates/gpu-sim/src/x.rs", &src).is_empty());
    }

    #[test]
    fn determinism_flags_hashmap_iteration() {
        let src = format!(
            "{DOC}use std::collections::HashMap;\nstruct S {{\n    m: HashMap<u32, u32>,\n}}\n\
             impl S {{\n    fn f(&self) -> u32 {{\n        self.m.values().sum()\n    }}\n}}\n"
        );
        let v = scan_source("crates/gpu-sim/src/s.rs", &src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "determinism");
        assert!(v[0].message.contains('m'));
        // Out of scope: the same source elsewhere is fine.
        assert!(rules_found("crates/workloads/src/s.rs", &src).is_empty());
    }

    #[test]
    fn determinism_flags_for_loops_once_per_line() {
        let src = format!(
            "{DOC}use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> u64 {{\n    \
             let mut acc = 0;\n    for (k, v) in m.iter() {{\n        acc += u64::from(k + v);\n    \
             }}\n    acc\n}}\n"
        );
        let v = scan_source("crates/core/src/s.rs", &src);
        assert_eq!(v.len(), 1, "call + loop collapse to one finding: {v:?}");
        assert_eq!(v[0].rule, "determinism");
    }

    #[test]
    fn determinism_spares_ordered_containers_and_tests() {
        let src = format!(
            "{DOC}use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, u32>) -> u32 {{\n    \
             m.values().sum()\n}}\n#[cfg(test)]\nmod tests {{\n    use std::collections::HashMap;\n    \
             fn t(m: &HashMap<u32, u32>) -> u32 {{ m.values().sum() }}\n}}\n"
        );
        assert!(rules_found("crates/gpu-sim/src/s.rs", &src).is_empty());
    }

    #[test]
    fn determinism_flags_wall_clock_and_thread_identity() {
        let src = format!(
            "{DOC}fn f() -> u128 {{\n    let t = std::time::Instant::now();\n    \
             t.elapsed().as_nanos()\n}}\n"
        );
        let v = scan_source("crates/core/src/s.rs", &src);
        assert!(v.iter().any(|x| x.rule == "determinism"), "{v:?}");
        let sys = format!("{DOC}use std::time::SystemTime;\n");
        assert_eq!(rules_found("crates/core/src/s.rs", &sys), ["determinism"]);
        let thr = format!("{DOC}fn f() {{ let _ = std::thread::current(); }}\n");
        assert_eq!(rules_found("crates/core/src/s.rs", &thr), ["determinism"]);
    }

    #[test]
    fn determinism_waiver_requires_justification() {
        let bare = format!(
            "{DOC}use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> u32 {{\n    \
             // xtask-allow: determinism\n    m.values().sum()\n}}\n"
        );
        let v = scan_source("crates/gpu-sim/src/s.rs", &bare);
        assert_eq!(v.len(), 1, "bare waiver converts, not silences: {v:?}");
        assert!(v[0].message.contains("justification"));
        let justified = format!(
            "{DOC}use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> u32 {{\n    \
             // sum is order-independent; xtask-allow: determinism\n    m.values().sum()\n}}\n"
        );
        assert!(rules_found("crates/gpu-sim/src/s.rs", &justified).is_empty());
    }

    #[test]
    fn panic_free_accounting_is_transitive_with_chain() {
        let src = format!(
            "{DOC}pub fn water_fill(budget: u32) -> u32 {{\n    step(budget)\n}}\nfn step(b: u32) \
             -> u32 {{\n    lookup(b).unwrap()\n}}\nfn lookup(b: u32) -> Option<u32> {{\n    \
             Some(b)\n}}\nfn unrelated() -> u32 {{\n    None.unwrap()\n}}\n"
        );
        let v = scan_source("crates/core/src/waterfill.rs", &src);
        let pf: Vec<&Violation> = v
            .iter()
            .filter(|x| x.rule == "panic-free-accounting")
            .collect();
        assert_eq!(pf.len(), 1, "only the reachable unwrap: {v:?}");
        assert_eq!(pf[0].chain, ["water_fill", "step"]);
        // The same unwraps also violate no-unwrap (per-file rule).
        assert_eq!(v.iter().filter(|x| x.rule == "no-unwrap").count(), 2);
    }

    #[test]
    fn panic_free_accounting_flags_macros_and_indexing() {
        let src = format!(
            "{DOC}pub fn speedups(xs: &[f64]) -> f64 {{\n    if xs.is_empty() {{\n        \
             panic!(\"empty\");\n    }}\n    xs[0]\n}}\n"
        );
        let v = scan_source("crates/core/src/metrics.rs", &src);
        let rules: Vec<&str> = v.iter().map(|x| x.rule).collect();
        assert_eq!(
            rules,
            ["panic-free-accounting", "panic-free-accounting"],
            "{v:?}"
        );
        // assert!/debug_assert! are invariant checks, not findings.
        let ok = format!(
            "{DOC}pub fn speedups(xs: &[f64]) -> f64 {{\n    assert!(!xs.is_empty());\n    \
             debug_assert!(xs.len() < 1024);\n    xs.first().copied().unwrap_or(0.0)\n}}\n"
        );
        assert!(rules_found("crates/core/src/metrics.rs", &ok).is_empty());
    }

    #[test]
    fn missing_module_docs_flagged() {
        let src = "fn f() {}\n";
        let v = scan_source("crates/x/src/a.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "module-docs");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn module_docs_satisfied_by_inner_doc() {
        assert!(rules_found("crates/x/src/a.rs", "//! Present.\nfn f() {}\n").is_empty());
    }

    #[test]
    fn raw_strings_and_lifetimes_do_not_confuse_the_lexer() {
        let src = format!(
            "{DOC}fn f<'a>(x: &'a str) -> bool {{\n    let p = r\"float == 0.5 .unwrap()\";\n    \
             p.len() == 24\n}}\n"
        );
        assert!(rules_found("crates/x/src/a.rs", &src).is_empty());
    }

    #[test]
    fn multiline_string_is_not_code() {
        let src = format!("{DOC}const S: &str = \"line one\n  .unwrap() inside\n\";\n");
        assert!(rules_found("crates/x/src/a.rs", &src).is_empty());
    }

    #[test]
    fn jsonl_report_shape_and_escaping() {
        let vs = vec![Violation {
            rule: "no-unwrap",
            file: "crates/x/src/a.rs".to_string(),
            line: 3,
            message: "say \"no\"".to_string(),
            chain: vec!["Sm::tick".to_string(), "helper".to_string()],
        }];
        let report = report_jsonl(&vs, 42);
        let n = warped_slicer::tracefmt::validate_json_syntax(&report).expect("valid JSONL");
        assert_eq!(n, 2, "header + one violation");
        assert!(report.contains("\"files_scanned\":42"));
        assert!(report.contains("\\\"no\\\""));
        assert!(report.contains("\"chain\":[\"Sm::tick\",\"helper\"]"));
    }

    // ---- fixture golden tests ------------------------------------------

    const FIX_RAW_STRINGS: &str = include_str!("../fixtures/masker_raw_strings.rs");
    const FIX_NESTED_COMMENTS: &str = include_str!("../fixtures/masker_nested_comments.rs");
    const FIX_NO_UNWRAP: &str = include_str!("../fixtures/rule_no_unwrap.rs");
    const FIX_NO_LOSSY_CAST: &str = include_str!("../fixtures/rule_no_lossy_cast.rs");
    const FIX_NO_FLOAT_EQ: &str = include_str!("../fixtures/rule_no_float_eq.rs");
    const FIX_MODULE_DOCS: &str = include_str!("../fixtures/rule_module_docs.rs");
    const FIX_NO_INDEX_PANIC: &str = include_str!("../fixtures/rule_no_index_panic.rs");
    const FIX_NO_UNCHECKED_SPAWN: &str = include_str!("../fixtures/rule_no_unchecked_spawn.rs");
    const FIX_DETERMINISM: &str = include_str!("../fixtures/rule_determinism.rs");
    const FIX_NO_TICK_ALLOC: &str = include_str!("../fixtures/rule_no_tick_alloc.rs");
    const FIX_NO_TICK_ALLOC_SOA: &str = include_str!("../fixtures/rule_no_tick_alloc_soa.rs");
    const FIX_PANIC_FREE: &str = include_str!("../fixtures/rule_panic_free_accounting.rs");
    const FIX_PANIC_FREE_PREDICTOR: &str = include_str!("../fixtures/rule_panic_free_predictor.rs");

    const ALL_FIXTURES: [(&str, &str); 13] = [
        ("masker_raw_strings.rs", FIX_RAW_STRINGS),
        ("masker_nested_comments.rs", FIX_NESTED_COMMENTS),
        ("rule_no_unwrap.rs", FIX_NO_UNWRAP),
        ("rule_no_lossy_cast.rs", FIX_NO_LOSSY_CAST),
        ("rule_no_float_eq.rs", FIX_NO_FLOAT_EQ),
        ("rule_module_docs.rs", FIX_MODULE_DOCS),
        ("rule_no_index_panic.rs", FIX_NO_INDEX_PANIC),
        ("rule_no_unchecked_spawn.rs", FIX_NO_UNCHECKED_SPAWN),
        ("rule_determinism.rs", FIX_DETERMINISM),
        ("rule_no_tick_alloc.rs", FIX_NO_TICK_ALLOC),
        ("rule_no_tick_alloc_soa.rs", FIX_NO_TICK_ALLOC_SOA),
        ("rule_panic_free_accounting.rs", FIX_PANIC_FREE),
        ("rule_panic_free_predictor.rs", FIX_PANIC_FREE_PREDICTOR),
    ];

    /// 1-based line of the first occurrence of `needle` in `src`, so golden
    /// assertions survive edits that shift the fixture around.
    fn line_of(src: &str, needle: &str) -> usize {
        let pos = src
            .find(needle)
            .unwrap_or_else(|| panic!("needle {needle:?} not found in fixture"));
        src[..pos].matches('\n').count() + 1
    }

    /// (rule, line) pairs, in report order.
    fn golden(label: &str, src: &str) -> Vec<(&'static str, usize)> {
        scan_source(label, src)
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    #[test]
    fn fixture_masker_raw_strings_flags_only_the_final_unwrap() {
        let v = scan_source("crates/x/src/a.rs", FIX_RAW_STRINGS);
        assert_eq!(v.len(), 1, "findings: {v:?}");
        assert_eq!(v[0].rule, "no-unwrap");
        assert_eq!(v[0].line, line_of(FIX_RAW_STRINGS, "std::fs::read"));
    }

    #[test]
    fn fixture_masker_nested_comments_flags_only_the_final_unwrap() {
        let v = scan_source("crates/x/src/a.rs", FIX_NESTED_COMMENTS);
        assert_eq!(v.len(), 1, "findings: {v:?}");
        assert_eq!(v[0].rule, "no-unwrap");
        assert_eq!(
            v[0].line,
            line_of(FIX_NESTED_COMMENTS, "v.first().copied().unwrap()")
        );
    }

    #[test]
    fn fixture_no_unwrap_golden() {
        assert_eq!(
            golden("crates/x/src/a.rs", FIX_NO_UNWRAP),
            [
                ("no-unwrap", line_of(FIX_NO_UNWRAP, "Some(1).unwrap()")),
                ("no-unwrap", line_of(FIX_NO_UNWRAP, "Some(2).expect")),
            ]
        );
    }

    #[test]
    fn fixture_no_lossy_cast_golden() {
        assert_eq!(
            golden("crates/x/src/stats.rs", FIX_NO_LOSSY_CAST),
            [
                ("no-lossy-cast", line_of(FIX_NO_LOSSY_CAST, "cycles as u32")),
                ("no-lossy-cast", line_of(FIX_NO_LOSSY_CAST, "ipc as f32")),
            ]
        );
    }

    #[test]
    fn fixture_no_float_eq_golden() {
        assert_eq!(
            golden("crates/x/src/a.rs", FIX_NO_FLOAT_EQ),
            [
                ("no-float-eq", line_of(FIX_NO_FLOAT_EQ, "x == 0.5")),
                ("no-float-eq", line_of(FIX_NO_FLOAT_EQ, "1e-9 != x")),
                ("no-float-eq", line_of(FIX_NO_FLOAT_EQ, "x == -0.25")),
            ]
        );
    }

    #[test]
    fn fixture_module_docs_golden() {
        assert_eq!(
            golden("crates/x/src/a.rs", FIX_MODULE_DOCS),
            [("module-docs", 1)]
        );
        let waived = "// generated table; xtask-allow: module-docs\npub fn item() {}\n";
        assert!(golden("crates/x/src/a.rs", waived).is_empty());
    }

    #[test]
    fn fixture_no_index_panic_golden() {
        assert_eq!(
            golden("crates/analysis/src/fixture.rs", FIX_NO_INDEX_PANIC),
            [
                ("no-index-panic", line_of(FIX_NO_INDEX_PANIC, "xs[i]")),
                (
                    "no-index-panic",
                    line_of(FIX_NO_INDEX_PANIC, "xs.to_vec()[0]")
                ),
            ]
        );
    }

    #[test]
    fn fixture_no_unchecked_spawn_golden() {
        let f = FIX_NO_UNCHECKED_SPAWN;
        assert_eq!(
            golden("crates/exec/src/fixture.rs", f),
            [
                (
                    "no-unchecked-spawn",
                    line_of(f, "let h = std::thread::spawn")
                ),
                ("no-unchecked-spawn", line_of(f, "let _ = h.join()")),
                (
                    "no-unchecked-spawn",
                    line_of(f, "let h2 = std::thread::spawn")
                ),
                ("no-unchecked-spawn", line_of(f, "h2.join().ok()")),
                (
                    "no-unchecked-spawn",
                    line_of(f, "let _ = std::thread::Builder"),
                ),
                ("no-unchecked-spawn", line_of(f, ".spawn(|| ()).ok()")),
                ("no-unchecked-spawn", line_of(f, "rx.recv().ok()")),
                ("no-unchecked-spawn", line_of(f, "let _ = rx.try_recv()")),
            ]
        );
    }

    #[test]
    fn fixture_determinism_golden() {
        let f = FIX_DETERMINISM;
        let v = scan_source("crates/gpu-sim/src/fixture.rs", f);
        let got: Vec<(&str, usize)> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert_eq!(
            got,
            [
                ("determinism", line_of(f, "m.values()")),
                ("determinism", line_of(f, "for k in s.iter()")),
                ("determinism", line_of(f, "Instant::now()")),
                ("determinism", line_of(f, "std::thread::current()")),
                ("determinism", line_of(f, "SystemTime::now()")),
                ("determinism", line_of(f, "u.values()")),
            ]
        );
        // The bare waiver on `waived_bare` converts the finding rather than
        // silencing it.
        let bare = v.last().expect("has findings");
        assert!(
            bare.message.contains("require a justification"),
            "message: {}",
            bare.message
        );
    }

    #[test]
    fn fixture_no_tick_alloc_golden() {
        let f = FIX_NO_TICK_ALLOC;
        let v = scan_source("crates/gpu-sim/src/fixture.rs", f);
        let got: Vec<(&str, usize)> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert_eq!(
            got,
            [
                ("no-tick-alloc", line_of(f, "Vec::new()")),
                ("no-tick-alloc", line_of(f, "vec![0u32; 4]")),
                ("no-tick-alloc", line_of(f, "Vec::with_capacity(8)")),
                ("no-tick-alloc", line_of(f, "Box::new(1u32)")),
                ("no-tick-alloc", line_of(f, ".collect()")),
                ("no-tick-alloc", line_of(f, ".to_vec()")),
                ("no-tick-alloc", line_of(f, "format!")),
                ("no-tick-alloc", line_of(f, "String::from")),
            ]
        );
        for v in &v {
            assert_eq!(v.chain, ["Sm::tick", "Sm::issue_stage", "Sm::leaf"]);
        }
    }

    #[test]
    fn fixture_no_tick_alloc_soa_golden() {
        let f = FIX_NO_TICK_ALLOC_SOA;
        let v = scan_source("crates/gpu-sim/src/rule_no_tick_alloc_soa.rs", f);
        let got: Vec<(&str, usize)> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert_eq!(
            got,
            [
                ("no-tick-alloc", line_of(f, "Vec::new()")),
                ("no-tick-alloc", line_of(f, "vec![slot as u64; 4]")),
                ("no-tick-alloc", line_of(f, ".collect()")),
            ]
        );
        for v in &v {
            assert_eq!(
                v.chain,
                ["Sm::on_fill_batch", "Sm::refresh_warp", "Sm::rebuild_entry"]
            );
        }
    }

    #[test]
    fn fixture_panic_free_accounting_golden() {
        let f = FIX_PANIC_FREE;
        let v = scan_source("crates/core/src/metrics.rs", f);
        let got: Vec<(&str, usize)> = v.iter().map(|v| (v.rule, v.line)).collect();
        let unwrap_line = line_of(f, "xs.first().unwrap()");
        let expect_line = line_of(f, "xs.get(1).expect");
        assert_eq!(
            got,
            [
                ("no-unwrap", unwrap_line),
                ("panic-free-accounting", unwrap_line),
                ("no-unwrap", expect_line),
                ("panic-free-accounting", expect_line),
                ("panic-free-accounting", line_of(f, "xs[2]")),
                ("panic-free-accounting", line_of(f, "panic!")),
                ("no-unwrap", line_of(f, "xs.last().unwrap()")),
            ]
        );
        for v in v.iter().filter(|v| v.rule == "panic-free-accounting") {
            assert_eq!(v.chain, ["speedups", "normalize"]);
        }
        for v in v.iter().filter(|v| v.rule == "no-unwrap") {
            assert!(v.chain.is_empty(), "per-file rules carry no chain");
        }
    }

    #[test]
    fn fixture_panic_free_predictor_golden() {
        let f = FIX_PANIC_FREE_PREDICTOR;
        let v = scan_source("crates/analysis/src/fixture.rs", f);
        let got: Vec<(&str, usize)> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert_eq!(
            got,
            [
                ("panic-free-accounting", line_of(f, "sub-CTA occupancy")),
                (
                    "panic-free-accounting",
                    line_of(f, "beyond the occupancy bound")
                ),
                ("panic-free-accounting", line_of(f, "n % 2 is 0 or 1")),
            ],
            "todo!/unimplemented!/unreachable! fire; the waived arm, the \
             assert! helper, and the unreachable-from-seed fn stay silent"
        );
        for v in &v {
            assert_eq!(v.chain, ["predict_kernel", "curve_point"]);
        }
    }

    // ---- lexer round-trip property --------------------------------------

    /// Spans tile `src` exactly: no gaps, no overlaps, full coverage, line
    /// numbers consistent with the newlines actually seen.
    fn assert_round_trip(label: &str, src: &str) {
        let toks = crate::lex::lex(src);
        let mut pos = 0usize;
        let mut line = 1u32;
        for t in &toks {
            assert_eq!(t.start, pos, "{label}: gap or overlap at byte {pos}");
            assert!(t.end > t.start, "{label}: empty token at byte {pos}");
            assert_eq!(t.line, line, "{label}: line drift at byte {pos}");
            let text = &src[t.start..t.end];
            line += u32::try_from(text.matches('\n').count()).unwrap_or(0);
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "{label}: spans do not cover the file");
    }

    #[test]
    fn lexer_round_trips_every_workspace_source_and_fixture() {
        let files = workspace_files(&repo_root()).expect("walk succeeds");
        assert!(files.len() >= 12, "expected a real workspace walk");
        for (label, src) in &files {
            assert_round_trip(label, src);
        }
        for (label, src) in ALL_FIXTURES {
            assert_round_trip(label, src);
        }
    }

    /// The workspace root, from this crate's manifest dir.
    fn repo_root() -> PathBuf {
        let mut d = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        d.pop();
        d.pop();
        d
    }

    #[test]
    fn workspace_walk_reports_relative_paths() {
        let vs = lint_workspace(&repo_root()).expect("walk succeeds");
        for v in &vs {
            assert!(!v.file.starts_with('/'), "relative path: {}", v.file);
            assert!(RULE_NAMES.contains(&v.rule));
        }
    }

    #[test]
    fn workspace_lint_is_clean() {
        let vs = lint_workspace(&repo_root()).expect("walk succeeds");
        assert!(
            vs.is_empty(),
            "the workspace must lint clean; found:\n{}",
            vs.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn every_tick_seed_resolves_and_tick_path_fns_are_reachable() {
        let files = workspace_files(&repo_root()).expect("walk succeeds");
        let parsed: Vec<(String, FileItems)> = files
            .iter()
            .map(|(p, s)| (p.clone(), items::parse(s)))
            .collect();
        let graph = CallGraph::build(&parsed);
        let mut seeds = Vec::new();
        for (ty, name) in TICK_SEEDS {
            let found = graph.find(&parsed, Some(ty), name);
            assert!(!found.is_empty(), "tick seed `{ty}::{name}` not found");
            seeds.extend(found);
        }
        for (ty, name) in ACCOUNTING_SEEDS {
            let found = graph.find(&parsed, ty, name);
            assert!(
                !found.is_empty(),
                "accounting seed `{:?}::{name}` not found",
                ty
            );
        }
        let reach = graph.reachable(&seeds);
        let reached: BTreeSet<&str> = reach
            .iter()
            .filter_map(|id| {
                let n = &graph.nodes[id];
                parsed
                    .get(n.file)
                    .and_then(|(_, items)| items.fns.get(n.fn_idx))
                    .map(|f| f.name.as_str())
            })
            .collect();
        for name in TICK_PATH_FNS {
            assert!(
                reached.contains(name),
                "`{name}` is not reachable from any tick seed; reached: {reached:?}"
            );
        }
    }
}
