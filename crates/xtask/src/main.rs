//! Workspace automation for the Warped-Slicer reproduction.
//!
//! Entry points (via the `.cargo/config.toml` alias):
//!
//! * `cargo xtask lint` — the custom, simulator-specific static-analysis
//!   pass over library sources (see [`lint`] for the rules);
//! * `cargo xtask verify-workloads` — the `ws-analyze` static verifier over
//!   the shipped workload suites (writes its per-suite report to
//!   `target/verify-workloads-report.txt`);
//! * `cargo xtask verify-predictions` — cross-validates the `ws-predict`
//!   static performance curves against simulated ground truth for every
//!   Table II workload (writes `target/predict-accuracy.jsonl`; fails when
//!   the knee-hit rate drops below the floor in `results/BENCH_predict.json`);
//! * `cargo xtask check` — the full analysis gate: `cargo fmt --check`,
//!   `cargo clippy -D warnings`, the custom lint pass, the workload
//!   verifier, and the tier-1 test suite, in that order, failing fast;
//! * `cargo xtask help` — usage.
//!
//! The crate is deliberately dependency-free (`std` only) so the gate runs
//! in offline and hermetic environments where the crate registry is
//! unreachable.

mod callgraph;
mod items;
mod lex;
mod lint;

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// Workspace root, derived from this crate's manifest dir (`crates/xtask`).
fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir
}

fn usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\
         \n\
         commands:\n\
         \x20 lint              run the custom static-analysis pass over library sources\n\
         \x20                   (always writes target/lint-report.jsonl)\n\
         \x20 lint --json       same, printing the JSONL report to stdout\n\
         \x20 verify-workloads  run the ws-analyze static verifier over the shipped suites\n\
         \x20 verify-predictions  cross-validate ws-predict static curves against simulated\n\
         \x20                   ground truth (writes target/predict-accuracy.jsonl; fails\n\
         \x20                   below the knee-hit floor in results/BENCH_predict.json)\n\
         \x20 check             full gate: fmt --check, clippy -D warnings, lint,\n\
         \x20                   verify-workloads, tests\n\
         \x20 check --fast      gate without the test stage\n\
         \x20 help              this message\n\
         \n\
         Suppress a lint finding with a `// xtask-allow: <rule>` comment on the\n\
         offending line or the line above it (`determinism` waivers require a\n\
         justification). Rules: {}",
        lint::RULE_NAMES.join(", ")
    );
}

/// Runs `cargo <args>` in the workspace root, echoing the invocation.
/// Returns whether the command succeeded.
fn run_cargo(root: &Path, args: &[&str]) -> bool {
    println!("xtask: running `cargo {}`", args.join(" "));
    match Command::new("cargo").current_dir(root).args(args).status() {
        Ok(status) => status.success(),
        Err(err) => {
            eprintln!("xtask: failed to spawn cargo: {err}");
            false
        }
    }
}

fn run_lint(root: &Path, json: bool) -> bool {
    let files = match lint::workspace_files(root) {
        Ok(f) => f,
        Err(err) => {
            eprintln!("xtask: lint pass failed to read sources: {err}");
            return false;
        }
    };
    let violations = lint::lint_files(&files);
    // The machine-readable report is always written (CI uploads it as an
    // artifact); `--json` additionally prints it to stdout.
    let report = lint::report_jsonl(&violations, files.len());
    let report_path = root.join("target").join("lint-report.jsonl");
    let written = std::fs::create_dir_all(root.join("target"))
        .and_then(|()| std::fs::write(&report_path, &report));
    if let Err(err) = written {
        eprintln!("xtask: failed to write {}: {err}", report_path.display());
    }
    if json {
        print!("{report}");
    }
    if violations.is_empty() {
        println!("xtask: lint clean ({} files scanned)", files.len());
        return true;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    eprintln!(
        "xtask: {} lint violation(s); suppress intentional ones with `// xtask-allow: <rule>`",
        violations.len()
    );
    false
}

/// Runs the `ws-analyze` static verifier over the shipped workload suites,
/// leaving its full report in `target/verify-workloads-report.txt` (uploaded
/// as a CI artifact).
fn run_verify_workloads(root: &Path) -> bool {
    run_cargo(
        root,
        &[
            "run",
            "--package",
            "ws-analyze",
            "--bin",
            "verify-workloads",
            "--offline",
            "--quiet",
            "--",
            "--report",
            "target/verify-workloads-report.txt",
        ],
    )
}

/// Cross-validates the ws-predict static performance curves against
/// simulated ground truth for every Table II workload, leaving the
/// per-kernel accuracy report in `target/predict-accuracy.jsonl` (uploaded
/// as a CI artifact). Fails when the knee-hit rate drops below the floor
/// committed in `results/BENCH_predict.json`.
fn run_verify_predictions(root: &Path) -> bool {
    run_cargo(
        root,
        &[
            "run",
            "--release",
            "--package",
            "ws-bench",
            "--bin",
            "verify-predictions",
            "--offline",
            "--quiet",
            "--",
            "--report",
            "target/predict-accuracy.jsonl",
        ],
    )
}

fn run_check(root: &Path, fast: bool) -> bool {
    let stages: &[(&str, &dyn Fn() -> bool)] = &[
        ("rustfmt", &|| {
            run_cargo(root, &["fmt", "--all", "--", "--check"])
        }),
        ("clippy", &|| {
            run_cargo(
                root,
                &[
                    "clippy",
                    "--workspace",
                    "--all-targets",
                    "--offline",
                    "--",
                    "-D",
                    "warnings",
                ],
            )
        }),
        ("custom lints", &|| run_lint(root, false)),
        ("verify-workloads", &|| run_verify_workloads(root)),
        ("tests", &|| {
            if fast {
                println!("xtask: skipping tests (--fast)");
                true
            } else {
                run_cargo(root, &["test", "--workspace", "--offline", "-q"])
            }
        }),
    ];
    for (name, stage) in stages {
        println!("xtask: ── stage: {name} ──");
        if !stage() {
            eprintln!("xtask: check FAILED at stage `{name}`");
            return false;
        }
    }
    println!(
        "xtask: check passed (fmt + clippy + lints + verify-workloads{})",
        {
            if fast {
                ""
            } else {
                " + tests"
            }
        }
    );
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    let ok = match args.first().map(String::as_str) {
        Some("lint") => run_lint(&root, args.iter().any(|a| a == "--json")),
        Some("verify-workloads") => run_verify_workloads(&root),
        Some("verify-predictions") => run_verify_predictions(&root),
        Some("check") => run_check(&root, args.iter().any(|a| a == "--fast")),
        Some("help") | None => {
            usage();
            true
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`");
            usage();
            false
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
