//! Dynamic kernel arrival (the paper's Fig. 2e): one kernel owns the GPU,
//! a second arrives mid-run, and the Warped-Slicer re-profiles and
//! re-partitions around it without evicting anything.
//!
//! ```text
//! cargo run --release --example late_arrival [FIRST] [SECOND] [ARRIVAL_CYCLE]
//! ```

use warped_slicer_repro::gpu_sim::{Gpu, GpuConfig, KernelId, SchedulerKind};
use warped_slicer_repro::warped_slicer::policy::Controller;
use warped_slicer_repro::warped_slicer::{WarpedSlicerConfig, WarpedSlicerController};
use warped_slicer_repro::ws_workloads::by_abbrev;

fn main() {
    let mut args = std::env::args().skip(1);
    let first = args.next().unwrap_or_else(|| "IMG".to_string());
    let second = args.next().unwrap_or_else(|| "MVP".to_string());
    let arrival: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(30_000);

    let (Some(a), Some(b)) = (by_abbrev(&first), by_abbrev(&second)) else {
        eprintln!("unknown benchmark; try BLK BFS DXT HOT IMG KNN LBM MM MVP NN");
        std::process::exit(1);
    };

    let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
    let ka = gpu.add_kernel(a.desc.clone());
    let mut controller = WarpedSlicerController::new(WarpedSlicerConfig::scaled_for(60_000));

    println!("cycle {:>6}: {} launches alone", 0, a.abbrev);
    let mut kb: Option<KernelId> = None;
    let mut last_decision_at = u64::MAX;
    let total = arrival * 3;
    for now in 0..total {
        if now == arrival {
            kb = Some(gpu.add_kernel(b.desc.clone()));
            println!("cycle {now:>6}: {} arrives -> re-profiling", b.abbrev);
        }
        controller.on_cycle(&mut gpu);
        gpu.tick();
        if let Some(d) = controller.decision() {
            if d.decided_at != last_decision_at {
                last_decision_at = d.decided_at;
                match (&d.quotas, d.spatial_fallback) {
                    (Some(q), _) => {
                        println!("cycle {:>6}: partition decided: quotas {q:?}", d.decided_at);
                    }
                    (None, true) => {
                        println!(
                            "cycle {:>6}: fell back to spatial multitasking",
                            d.decided_at
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    println!("\nAfter {total} cycles:");
    println!(
        "  {}: {:>10} warp instructions (ran the whole time)",
        a.abbrev,
        gpu.kernel_insts(ka)
    );
    if let Some(kb) = kb {
        println!(
            "  {}: {:>10} warp instructions (arrived at {arrival})",
            b.abbrev,
            gpu.kernel_insts(kb)
        );
    }
    println!("  re-profiles triggered: {}", controller.reprofile_count());
    let sm0 = gpu.sm(0);
    println!(
        "  SM0 residency: {} x {} CTAs + {} x {} CTAs",
        a.abbrev,
        sm0.kernel_ctas(0),
        b.abbrev,
        sm0.kernel_ctas(1)
    );
}
