//! Visualize the Warped-Slicer's lifecycle as a per-SM occupancy timeline:
//! profiling (a CTA-count ramp across SMs), the partition decision, the
//! drain of over-quota CTAs, and the steady-state slice.
//!
//! Each printed row is one sampling instant; each column is one SM showing
//! `a:b` resident CTA counts for the two kernels.
//!
//! ```text
//! cargo run --release --example occupancy_timeline [BENCH_A] [BENCH_B]
//! ```

use warped_slicer_repro::gpu_sim::{Gpu, GpuConfig, SchedulerKind};
use warped_slicer_repro::warped_slicer::policy::Controller;
use warped_slicer_repro::warped_slicer::{WarpedSlicerConfig, WarpedSlicerController};
use warped_slicer_repro::ws_workloads::by_abbrev;

fn main() {
    let mut args = std::env::args().skip(1);
    let a = args.next().unwrap_or_else(|| "IMG".to_string());
    let b = args.next().unwrap_or_else(|| "NN".to_string());
    let (Some(ba), Some(bb)) = (by_abbrev(&a), by_abbrev(&b)) else {
        eprintln!("unknown benchmark; try BLK BFS DXT HOT IMG KNN LBM MM MVP NN");
        std::process::exit(1);
    };

    let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
    gpu.add_kernel(ba.desc.clone());
    gpu.add_kernel(bb.desc.clone());
    let mut controller = WarpedSlicerController::new(WarpedSlicerConfig::scaled_for(60_000));

    println!(
        "{}:{} residency per SM over time ({} = kernel 0, {} = kernel 1)\n",
        ba.abbrev, bb.abbrev, ba.abbrev, bb.abbrev
    );
    print!("{:>7} ", "cycle");
    for s in 0..gpu.num_sms() {
        print!("{s:^5}");
    }
    println!(" phase");

    let total = 80_000u64;
    let step = 4_000u64;
    let mut decided_at = None;
    for now in 0..total {
        controller.on_cycle(&mut gpu);
        gpu.tick();
        if decided_at.is_none() {
            if let Some(d) = controller.decision() {
                decided_at = Some((d.decided_at, d.quotas.clone(), d.spatial_fallback));
            }
        }
        if now % step == step - 1 {
            print!("{:>7} ", now + 1);
            for s in 0..gpu.num_sms() {
                let sm = gpu.sm(s);
                print!("{:>2}:{:<2}", sm.kernel_ctas(0), sm.kernel_ctas(1));
            }
            let phase = match &decided_at {
                None => "profiling".to_string(),
                Some((at, q, fallback)) if now < at + step => match (q, fallback) {
                    (Some(q), _) => format!("decided {q:?} @ {at}"),
                    (None, true) => format!("spatial fallback @ {at}"),
                    _ => String::new(),
                },
                Some((_, Some(q), _)) => format!("running (quota {q:?})"),
                Some((_, None, _)) => "running (spatial)".to_string(),
            };
            println!(" {phase}");
        }
    }
    println!(
        "\nkernel instructions: {} = {}, {} = {}",
        ba.abbrev,
        gpu.kernel_insts(gpu_sim_id(0)),
        bb.abbrev,
        gpu.kernel_insts(gpu_sim_id(1)),
    );
}

fn gpu_sim_id(i: usize) -> warped_slicer_repro::gpu_sim::KernelId {
    warped_slicer_repro::gpu_sim::KernelId(i)
}
