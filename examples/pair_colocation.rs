//! Co-locate two kernels on every SM and compare all multiprogramming
//! policies — the paper's core experiment on one pair.
//!
//! ```text
//! cargo run --release --example pair_colocation [BENCH_A] [BENCH_B] [CYCLES]
//! ```

use warped_slicer_repro::warped_slicer::{
    antt, fairness, run_corun, run_isolation, PolicyKind, RunConfig, WarpedSlicerConfig,
};
use warped_slicer_repro::ws_workloads::by_abbrev;

fn main() {
    let mut args = std::env::args().skip(1);
    let a = args.next().unwrap_or_else(|| "IMG".to_string());
    let b = args.next().unwrap_or_else(|| "NN".to_string());
    let cycles: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(60_000);

    let (Some(ba), Some(bb)) = (by_abbrev(&a), by_abbrev(&b)) else {
        eprintln!("unknown benchmark; try BLK BFS DXT HOT IMG KNN LBM MM MVP NN");
        std::process::exit(1);
    };
    let cfg = RunConfig {
        isolation_cycles: cycles,
        ..RunConfig::default()
    };

    println!("Measuring equal-work targets ({cycles} isolated cycles each)...");
    let ra = run_isolation(&ba.desc, &cfg);
    let rb = run_isolation(&bb.desc, &cfg);
    let (ta, tb) = (ra.target_insts, rb.target_insts);
    // Metrics normalize each kernel by its own isolated execution time.
    let iso = [ra.isolated_cycles, rb.isolated_cycles];
    println!("  {}: {} warp instructions", ba.abbrev, ta);
    println!("  {}: {} warp instructions\n", bb.abbrev, tb);

    let policies = [
        PolicyKind::LeftOver,
        PolicyKind::Fcfs,
        PolicyKind::Spatial,
        PolicyKind::Even,
        PolicyKind::WarpedSlicer(WarpedSlicerConfig::scaled_for(cycles)),
    ];
    let mut base_ipc = None;
    println!(
        "{:<14} {:>8} {:>9} {:>9} {:>7}  decision",
        "policy", "IPC", "vs LO", "fairness", "ANTT"
    );
    for p in policies {
        let r = run_corun(&[&ba.desc, &bb.desc], &[ta, tb], &p, &cfg);
        let base = *base_ipc.get_or_insert(r.combined_ipc);
        let decision = match &r.decision {
            Some(d) if d.spatial_fallback => "-> spatial fallback".to_string(),
            Some(d) => match &d.quotas {
                Some(q) => format!("quotas {q:?} @cycle {}", d.decided_at),
                None => String::new(),
            },
            None => String::new(),
        };
        println!(
            "{:<14} {:>8.2} {:>8.2}x {:>9.2} {:>7.2}  {}{}",
            r.policy,
            r.combined_ipc,
            r.combined_ipc / base,
            fairness(&r, &iso),
            antt(&r, &iso),
            decision,
            if r.timed_out { " (TIMED OUT)" } else { "" },
        );
    }
}
