//! Explore the intra-SM partitioning space for a pair: runs *every*
//! feasible CTA quota combination plus the baselines, prints the landscape,
//! and shows where the Warped-Slicer's online decision landed in it.
//!
//! ```text
//! cargo run --release --example policy_explorer [BENCH_A] [BENCH_B] [CYCLES]
//! ```

use warped_slicer_repro::warped_slicer::{
    feasible_quotas, run_corun, run_isolation, PolicyKind, RunConfig, WarpedSlicerConfig,
};
use warped_slicer_repro::ws_workloads::by_abbrev;

fn main() {
    let mut args = std::env::args().skip(1);
    let a = args.next().unwrap_or_else(|| "MM".to_string());
    let b = args.next().unwrap_or_else(|| "MVP".to_string());
    let cycles: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(30_000);

    let (Some(ba), Some(bb)) = (by_abbrev(&a), by_abbrev(&b)) else {
        eprintln!("unknown benchmark; try BLK BFS DXT HOT IMG KNN LBM MM MVP NN");
        std::process::exit(1);
    };
    let cfg = RunConfig {
        isolation_cycles: cycles,
        ..RunConfig::default()
    };
    let ta = run_isolation(&ba.desc, &cfg).target_insts;
    let tb = run_isolation(&bb.desc, &cfg).target_insts;
    let descs = [&ba.desc, &bb.desc];
    let targets = [ta, tb];

    let quotas = feasible_quotas(&descs, &cfg);
    println!(
        "{}_{}: {} feasible CTA combinations; sweeping all of them...\n",
        ba.abbrev,
        bb.abbrev,
        quotas.len()
    );

    let mut results: Vec<(String, f64)> = Vec::new();
    for q in &quotas {
        let r = run_corun(&descs, &targets, &PolicyKind::Quota(q.clone()), &cfg);
        results.push((format!("({},{})", q[0], q[1]), r.combined_ipc));
    }
    for p in [PolicyKind::LeftOver, PolicyKind::Spatial, PolicyKind::Even] {
        let r = run_corun(&descs, &targets, &p, &cfg);
        results.push((r.policy.clone(), r.combined_ipc));
    }
    let dynamic = run_corun(
        &descs,
        &targets,
        &PolicyKind::WarpedSlicer(WarpedSlicerConfig::scaled_for(cycles)),
        &cfg,
    );
    let dynamic_choice = dynamic
        .decision
        .as_ref()
        .map(|d| match (&d.quotas, d.spatial_fallback) {
            (Some(q), _) => format!("({},{})", q[0], q[1]),
            (None, true) => "Spatial".to_string(),
            _ => "?".to_string(),
        })
        .unwrap_or_default();

    results.sort_by(|x, y| y.1.total_cmp(&x.1));
    let best = results[0].1;
    println!("{:<12} {:>8}  {:>6}", "partition", "IPC", "of best");
    for (name, ipc) in &results {
        let marker = if *name == dynamic_choice {
            "  <- Warped-Slicer's choice"
        } else {
            ""
        };
        println!(
            "{name:<12} {ipc:>8.2}  {:>5.1}%{marker}",
            100.0 * ipc / best
        );
    }
    println!(
        "\nWarped-Slicer online: chose {dynamic_choice}, achieved {:.2} IPC ({:.1}% of best swept point)",
        dynamic.combined_ipc,
        100.0 * dynamic.combined_ipc / best
    );
}
