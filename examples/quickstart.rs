//! Quickstart: simulate one GPGPU kernel on the ISCA-baseline GPU and print
//! its throughput and stall profile.
//!
//! ```text
//! cargo run --release --example quickstart [BENCH] [CYCLES]
//! ```

use warped_slicer_repro::gpu_sim::{Gpu, GpuConfig, SchedulerKind, StallReason};
use warped_slicer_repro::ws_workloads::by_abbrev;

fn main() {
    let mut args = std::env::args().skip(1);
    let abbrev = args.next().unwrap_or_else(|| "IMG".to_string());
    let cycles: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(50_000);

    let Some(bench) = by_abbrev(&abbrev) else {
        eprintln!("unknown benchmark {abbrev}; try BLK BFS DXT HOT IMG KNN LBM MM MVP NN");
        std::process::exit(1);
    };

    println!(
        "{} ({}), {} cycles on the Table I GPU",
        bench.abbrev, bench.full_name, cycles
    );

    let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
    let k = gpu.add_kernel(bench.desc.clone());

    // Simple Left-Over-style driver: keep every SM as full as it can be.
    for _ in 0..cycles {
        for s in 0..gpu.num_sms() {
            while gpu.try_launch(k, s) {}
        }
        gpu.tick();
    }

    println!("  instructions : {}", gpu.kernel_insts(k));
    println!("  IPC (GPU)    : {:.2}", gpu.total_ipc());
    println!("  CTAs finished: {}", gpu.kernel_meta(k).completed_ctas);
    let mem = gpu.mem_stats();
    println!(
        "  L2           : {} accesses, {:.1}% miss",
        mem.total.l2_accesses,
        100.0 * mem.total.l2_misses as f64 / mem.total.l2_accesses.max(1) as f64
    );
    println!(
        "  DRAM         : {} transactions ({:.1}% bus busy)",
        gpu.mem().dram_serviced(),
        100.0 * gpu.mem().dram_busy_fraction(cycles)
    );

    let mut stalls = gpu_stall_fractions(&gpu, cycles);
    stalls.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("  stall profile (scheduler-cycles):");
    for (name, frac) in stalls {
        println!("    {name:<18} {:5.1}%", frac * 100.0);
    }
}

fn gpu_stall_fractions(gpu: &Gpu, cycles: u64) -> Vec<(&'static str, f64)> {
    let total = (cycles * 16 * 2) as f64;
    let mut sum = gpu_sim_stalls(gpu);
    for (_, v) in &mut sum {
        *v /= total;
    }
    sum
}

fn gpu_sim_stalls(gpu: &Gpu) -> Vec<(&'static str, f64)> {
    let mut mem = 0.0;
    let mut raw = 0.0;
    let mut exec = 0.0;
    let mut ib = 0.0;
    for sm in gpu.sms() {
        let s = &sm.stats().stalls;
        mem += s.get(StallReason::LongMemoryLatency) as f64;
        raw += s.get(StallReason::ShortRawHazard) as f64;
        exec += s.get(StallReason::ExecResource) as f64;
        ib += s.get(StallReason::IbufferEmpty) as f64;
    }
    vec![
        ("long memory", mem),
        ("short RAW", raw),
        ("exec resource", exec),
        ("ibuffer empty", ib),
    ]
}
