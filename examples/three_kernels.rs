//! Three kernels sharing every SM (the paper's Fig. 8 scenario): watch the
//! Warped-Slicer profile, partition, and run a 3-way intra-SM slice.
//!
//! ```text
//! cargo run --release --example three_kernels [A] [B] [C] [CYCLES]
//! ```

use warped_slicer_repro::warped_slicer::{
    run_corun, run_isolation, PolicyKind, RunConfig, WarpedSlicerConfig,
};
use warped_slicer_repro::ws_workloads::by_abbrev;

fn main() {
    let mut args = std::env::args().skip(1);
    let names = [
        args.next().unwrap_or_else(|| "BLK".to_string()),
        args.next().unwrap_or_else(|| "IMG".to_string()),
        args.next().unwrap_or_else(|| "DXT".to_string()),
    ];
    let cycles: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(60_000);

    let benches: Vec<_> = names
        .iter()
        .map(|n| {
            by_abbrev(n).unwrap_or_else(|| {
                eprintln!("unknown benchmark {n}");
                std::process::exit(1);
            })
        })
        .collect();
    let cfg = RunConfig {
        isolation_cycles: cycles,
        ..RunConfig::default()
    };

    let targets: Vec<u64> = benches
        .iter()
        .map(|b| run_isolation(&b.desc, &cfg).target_insts)
        .collect();
    let descs: Vec<_> = benches.iter().map(|b| &b.desc).collect();
    println!(
        "3-kernel workload {}: targets {:?}\n",
        names.join("_"),
        targets
    );

    let mut base = None;
    for p in [
        PolicyKind::LeftOver,
        PolicyKind::Spatial,
        PolicyKind::Even,
        PolicyKind::WarpedSlicer(WarpedSlicerConfig::scaled_for(cycles)),
    ] {
        let r = run_corun(&descs, &targets, &p, &cfg);
        let b = *base.get_or_insert(r.combined_ipc);
        print!(
            "{:<14} IPC {:6.2} ({:4.2}x vs Left-Over)",
            r.policy,
            r.combined_ipc,
            r.combined_ipc / b
        );
        if let Some(d) = &r.decision {
            if d.spatial_fallback {
                print!("  -> spatial fallback");
            } else if let Some(q) = &d.quotas {
                print!("  quotas {q:?}");
                print!(
                    "  predicted perf {:?}",
                    d.predicted_perf
                        .iter()
                        .map(|p| (p * 100.0).round() / 100.0)
                        .collect::<Vec<_>>()
                );
            }
        }
        println!();
        // Per-kernel finish times show who was starved and who ran freely.
        for (i, f) in r.finish_cycle.iter().enumerate() {
            match f {
                Some(c) => println!("    {} finished at cycle {c}", names[i]),
                None => println!("    {} DID NOT FINISH", names[i]),
            }
        }
    }
}
