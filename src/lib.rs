//! # warped-slicer-repro
//!
//! Umbrella crate for the Warped-Slicer (ISCA 2016) reproduction suite.
//! Re-exports the three library crates so examples and integration tests
//! can use a single dependency:
//!
//! * [`gpu_sim`] — the cycle-level GPU simulator substrate
//! * [`warped_slicer`] — the paper's contribution: water-filling
//!   partitioning, online profiling, and multiprogramming policies
//! * [`ws_workloads`] — the ten-benchmark synthetic suite
//! * [`ws_analyze`] — the static kernel-IR verifier and dataflow analyzer

#![warn(missing_docs)]

pub use gpu_sim;
pub use warped_slicer;
pub use ws_analyze;
pub use ws_workloads;
