//! Cross-crate integration tests: workloads -> simulator -> policies ->
//! metrics, exercising the full pipeline the way the experiment harness
//! does.

use warped_slicer_repro::warped_slicer::{
    antt, fairness, run_corun, run_isolation, PolicyKind, RunConfig, WarpedSlicerConfig,
};
use warped_slicer_repro::ws_workloads::{all_pairs, by_abbrev, suite};

fn quick_cfg() -> RunConfig {
    RunConfig {
        isolation_cycles: 12_000,
        ..RunConfig::default()
    }
}

#[test]
fn every_benchmark_runs_in_isolation() {
    let cfg = quick_cfg();
    for b in suite() {
        let r = run_isolation(&b.desc, &cfg);
        assert!(r.target_insts > 1_000, "{} made progress", b.abbrev);
        assert!(r.ipc > 0.05, "{}: ipc {}", b.abbrev, r.ipc);
        assert_eq!(r.stats.cycles, cfg.isolation_cycles);
    }
}

#[test]
fn full_policy_pipeline_on_one_pair() {
    let cfg = quick_cfg();
    let a = by_abbrev("IMG").unwrap().desc;
    let b = by_abbrev("BLK").unwrap().desc;
    let ra = run_isolation(&a, &cfg);
    let rb = run_isolation(&b, &cfg);
    let (ta, tb) = (ra.target_insts, rb.target_insts);
    // Each kernel is normalized by its own isolated execution time.
    let iso = [ra.isolated_cycles, rb.isolated_cycles];
    let mut ipcs = Vec::new();
    for p in [
        PolicyKind::LeftOver,
        PolicyKind::Fcfs,
        PolicyKind::Spatial,
        PolicyKind::Even,
        PolicyKind::WarpedSlicer(WarpedSlicerConfig::scaled_for(cfg.isolation_cycles)),
    ] {
        let r = run_corun(&[&a, &b], &[ta, tb], &p, &cfg);
        assert!(!r.timed_out, "{p:?} timed out");
        assert!(r.finish_cycle.iter().all(Option::is_some));
        // Equal work: both kernels issued at least their targets.
        assert!(r.stats.insts_per_kernel[0] >= ta);
        assert!(r.stats.insts_per_kernel[1] >= tb);
        let f = fairness(&r, &iso);
        let t = antt(&r, &iso);
        assert!(f > 0.1 && f <= 1.05, "{p:?}: fairness {f}");
        assert!((0.95..10.0).contains(&t), "{p:?}: antt {t}");
        ipcs.push(r.combined_ipc);
    }
    // Co-location should beat the serializing baseline on this pair for at
    // least one sharing policy.
    let base = ipcs[0];
    assert!(
        ipcs[2..].iter().any(|&x| x > base),
        "some sharing policy beats Left-Over: {ipcs:?}"
    );
}

#[test]
fn runs_are_deterministic_end_to_end() {
    let cfg = quick_cfg();
    let a = by_abbrev("MM").unwrap().desc;
    let b = by_abbrev("MVP").unwrap().desc;
    let run = || {
        let ta = run_isolation(&a, &cfg).target_insts;
        let tb = run_isolation(&b, &cfg).target_insts;
        let r = run_corun(
            &[&a, &b],
            &[ta, tb],
            &PolicyKind::WarpedSlicer(WarpedSlicerConfig::scaled_for(cfg.isolation_cycles)),
            &cfg,
        );
        (
            r.total_cycles,
            r.combined_ipc.to_bits(),
            r.decision.and_then(|d| d.quotas),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn warped_slicer_decides_on_every_pair_category() {
    let cfg = quick_cfg();
    // One pair from each Fig. 6 category.
    for (a, b) in [("DXT", "MVP"), ("IMG", "LBM"), ("MM", "IMG")] {
        let da = by_abbrev(a).unwrap().desc;
        let db = by_abbrev(b).unwrap().desc;
        let ta = run_isolation(&da, &cfg).target_insts;
        let tb = run_isolation(&db, &cfg).target_insts;
        let r = run_corun(
            &[&da, &db],
            &[ta, tb],
            &PolicyKind::WarpedSlicer(WarpedSlicerConfig::scaled_for(cfg.isolation_cycles)),
            &cfg,
        );
        let d = r.decision.expect("a decision was made");
        assert!(
            d.spatial_fallback || d.quotas.is_some(),
            "{a}_{b}: decision must be quotas or spatial"
        );
        if let Some(q) = &d.quotas {
            assert!(q.iter().all(|&x| x >= 1), "{a}_{b}: {q:?}");
        }
    }
}

#[test]
fn pair_listing_matches_fig6_inventory() {
    // 30 pairs; each member is a real suite benchmark reachable by name.
    let pairs = all_pairs();
    assert_eq!(pairs.len(), 30);
    for p in &pairs {
        assert!(by_abbrev(p.a.abbrev).is_some());
        assert!(by_abbrev(p.b.abbrev).is_some());
    }
}
