//! Property-based tests on the core data structures and algorithms:
//! water-filling optimality against exhaustive search, allocator invariants
//! against a reference bitmap model, cache LRU behaviour against a
//! reference list model, and profiler-curve properties.

use proptest::prelude::*;
use warped_slicer_repro::gpu_sim::{LinearAllocator, ProbeResult, Region, SetAssocCache};
use warped_slicer_repro::warped_slicer::{
    brute_force, build_curves, water_fill, KernelCurve, ProfileSample, ResourceVec,
};

fn capacity() -> ResourceVec {
    ResourceVec {
        regs: 32768,
        shmem: 48 * 1024,
        threads: 1536,
        ctas: 8,
    }
}

fn curve_strategy() -> impl Strategy<Value = KernelCurve> {
    (
        prop::collection::vec(0.01f64..10.0, 1..=8),
        1024u64..8192,
        0u64..4096,
        1u64..12,
    )
        .prop_map(|(perf, regs, shmem, warps)| KernelCurve {
            perf,
            cta_cost: ResourceVec {
                regs,
                shmem,
                threads: warps * 32,
                ctas: 1,
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn waterfill_matches_bruteforce_objective(
        a in curve_strategy(),
        b in curve_strategy(),
    ) {
        let ks = [a, b];
        let wf = water_fill(&ks, capacity());
        let bf = brute_force(&ks, capacity());
        match (wf, bf) {
            (Some(wf), Some(bf)) => {
                // Algorithm 1 achieves the optimal max-min objective.
                prop_assert!(wf.min_perf() >= bf.min_perf() - 1e-9,
                    "waterfill {:?} worse than brute force {:?}", wf, bf);
                // And respects capacity.
                let used = ks[0].cta_cost.times(u64::from(wf.ctas[0]))
                    .plus(&ks[1].cta_cost.times(u64::from(wf.ctas[1])));
                prop_assert!(capacity().covers(&used));
                prop_assert!(wf.ctas.iter().all(|&t| t >= 1));
            }
            (None, None) => {}
            (wf, bf) => prop_assert!(false, "feasibility disagreement: {wf:?} vs {bf:?}"),
        }
    }

    #[test]
    fn waterfill_three_kernels_feasible(
        a in curve_strategy(),
        b in curve_strategy(),
        c in curve_strategy(),
    ) {
        let ks = [a, b, c];
        if let Some(p) = water_fill(&ks, capacity()) {
            let mut used = ResourceVec::zero();
            for (k, &t) in ks.iter().zip(&p.ctas) {
                prop_assert!(t >= 1);
                prop_assert!((t as usize) <= k.perf.len());
                used = used.plus(&k.cta_cost.times(u64::from(t)));
            }
            prop_assert!(capacity().covers(&used));
        }
    }

    #[test]
    fn allocator_never_overlaps_and_conserves(
        ops in prop::collection::vec((0u8..2, 1u32..64), 1..200)
    ) {
        let cap = 256u32;
        let mut alloc = LinearAllocator::new(cap);
        let mut live: Vec<Region> = Vec::new();
        for (kind, len) in ops {
            if kind == 0 || live.is_empty() {
                if let Some(r) = alloc.alloc(len) {
                    // In bounds.
                    prop_assert!(r.end() <= cap);
                    // No overlap with any live region.
                    for l in &live {
                        prop_assert!(r.end() <= l.start || l.end() <= r.start,
                            "overlap: {r:?} vs {l:?}");
                    }
                    live.push(r);
                }
            } else {
                let r = live.remove((len as usize) % live.len());
                alloc.free(r);
            }
            let used: u32 = live.iter().map(|r| r.len).sum();
            prop_assert_eq!(alloc.used(), used, "conservation");
            prop_assert!(alloc.largest_free() <= cap - used);
        }
    }

    #[test]
    fn allocator_first_fit_finds_any_sufficient_gap(
        lens in prop::collection::vec(8u32..64, 1..8),
        probe in 1u32..64,
    ) {
        // Alloc all, free every other one, then: alloc(probe) succeeds iff
        // some gap >= probe exists (largest_free is the oracle).
        let mut alloc = LinearAllocator::new(256);
        let mut regions = Vec::new();
        for l in &lens {
            if let Some(r) = alloc.alloc(*l) {
                regions.push(r);
            }
        }
        for (i, r) in regions.iter().enumerate() {
            if i % 2 == 0 {
                alloc.free(*r);
            }
        }
        let can = alloc.largest_free() >= probe;
        prop_assert_eq!(alloc.alloc(probe).is_some(), can);
    }

    #[test]
    fn cache_tracks_reference_lru(
        lines in prop::collection::vec(0u64..24, 1..300)
    ) {
        // 2 sets x 4 ways vs. a per-set reference LRU list.
        let mut cache = SetAssocCache::new(8 * 128, 4, 128);
        let mut reference: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        for line in lines {
            let set = (line % 2) as usize;
            let hit = cache.access(line) == ProbeResult::Hit;
            let ref_hit = reference[set].contains(&line);
            prop_assert_eq!(hit, ref_hit, "line {} divergence", line);
            // Touch/fill in the reference model.
            reference[set].retain(|&l| l != line);
            reference[set].push(line);
            if reference[set].len() > 4 {
                reference[set].remove(0);
            }
            if !hit {
                cache.fill(line);
            }
        }
    }

    #[test]
    fn profile_curves_are_bounded_by_scaled_samples(
        ipcs in prop::collection::vec(0.0f64..4.0, 8),
    ) {
        let samples: Vec<ProfileSample> = ipcs
            .iter()
            .enumerate()
            .map(|(i, &ipc)| ProfileSample {
                kernel: 0,
                ctas: i as u32 + 1,
                ipc_sampled: ipc,
                phi_mem: 0.0,
                bandwidth: None,
            })
            .collect();
        let curves = build_curves(&samples, &[8]);
        prop_assert_eq!(curves.len(), 1);
        let max_in = ipcs.iter().copied().fold(0.0f64, f64::max);
        for v in &curves[0] {
            prop_assert!(*v >= 0.0);
            // phi = 0: no scaling, so the curve cannot exceed the samples.
            prop_assert!(*v <= max_in + 1e-9);
        }
    }
}
