//! Randomized property tests on the core data structures and algorithms:
//! water-filling optimality against exhaustive search, allocator invariants
//! against a reference model, cache LRU behaviour against a reference list
//! model, and profiler-curve properties.
//!
//! Cases are generated with the in-tree deterministic `SimRng`
//! (xoshiro256++), not an external property-testing crate, so the suite
//! runs with `--offline` and replays identically on every platform. Each
//! test fixes its seed; a failure report prints the case index, which
//! together with the seed reproduces the exact inputs.

use warped_slicer_repro::gpu_sim::{LinearAllocator, ProbeResult, Region, SetAssocCache, SimRng};
use warped_slicer_repro::warped_slicer::{
    brute_force, build_curves, water_fill, KernelCurve, ProfileSample, ResourceVec,
};

fn capacity() -> ResourceVec {
    ResourceVec {
        regs: 32768,
        shmem: 48 * 1024,
        threads: 1536,
        ctas: 8,
    }
}

/// Random performance curve + CTA cost, mirroring the old proptest strategy:
/// 1–8 points in (0.01, 10), 1–8 K registers, 0–4 KB shmem, 1–11 warps.
fn random_curve(rng: &mut SimRng) -> KernelCurve {
    let points = 1 + rng.range_usize(8);
    let perf = (0..points).map(|_| 0.01 + rng.unit_f64() * 9.99).collect();
    KernelCurve {
        perf,
        cta_cost: ResourceVec {
            regs: 1024 + rng.range_u64(7168),
            shmem: rng.range_u64(4096),
            threads: (1 + rng.range_u64(11)) * 32,
            ctas: 1,
        },
    }
}

#[test]
fn waterfill_matches_bruteforce_objective() {
    let mut rng = SimRng::seed_from_u64(0x5EED_0001);
    for case in 0..64 {
        let ks = [random_curve(&mut rng), random_curve(&mut rng)];
        let wf = water_fill(&ks, capacity());
        let bf = brute_force(&ks, capacity());
        match (wf, bf) {
            (Some(wf), Some(bf)) => {
                // Algorithm 1 achieves the optimal max-min objective.
                assert!(
                    wf.min_perf() >= bf.min_perf() - 1e-9,
                    "case {case}: waterfill {wf:?} worse than brute force {bf:?}"
                );
                // And respects capacity.
                let used = ks[0]
                    .cta_cost
                    .times(u64::from(wf.ctas[0]))
                    .plus(&ks[1].cta_cost.times(u64::from(wf.ctas[1])));
                assert!(capacity().covers(&used), "case {case}");
                assert!(wf.ctas.iter().all(|&t| t >= 1), "case {case}");
            }
            (None, None) => {}
            (wf, bf) => panic!("case {case}: feasibility disagreement: {wf:?} vs {bf:?}"),
        }
    }
}

#[test]
fn waterfill_three_kernels_feasible() {
    let mut rng = SimRng::seed_from_u64(0x5EED_0002);
    for case in 0..64 {
        let ks = [
            random_curve(&mut rng),
            random_curve(&mut rng),
            random_curve(&mut rng),
        ];
        if let Some(p) = water_fill(&ks, capacity()) {
            let mut used = ResourceVec::zero();
            for (k, &t) in ks.iter().zip(&p.ctas) {
                assert!(t >= 1, "case {case}");
                assert!((t as usize) <= k.perf.len(), "case {case}");
                used = used.plus(&k.cta_cost.times(u64::from(t)));
            }
            assert!(capacity().covers(&used), "case {case}");
        }
    }
}

#[test]
fn allocator_never_overlaps_and_conserves() {
    let cap = 256u32;
    let mut rng = SimRng::seed_from_u64(0x5EED_0003);
    for case in 0..64 {
        let mut alloc = LinearAllocator::new(cap);
        let mut live: Vec<Region> = Vec::new();
        let ops = 1 + rng.range_usize(200);
        for _ in 0..ops {
            let len = 1 + rng.range_u64(63) as u32;
            if rng.range_u64(2) == 0 || live.is_empty() {
                if let Some(r) = alloc.alloc(len) {
                    // In bounds.
                    assert!(r.end() <= cap, "case {case}");
                    // No overlap with any live region.
                    for l in &live {
                        assert!(
                            r.end() <= l.start || l.end() <= r.start,
                            "case {case}: overlap: {r:?} vs {l:?}"
                        );
                    }
                    live.push(r);
                }
            } else {
                let r = live.remove((len as usize) % live.len());
                alloc.free(r);
            }
            let used: u32 = live.iter().map(|r| r.len).sum();
            assert_eq!(alloc.used(), used, "case {case}: conservation");
            assert!(alloc.largest_free() <= cap - used, "case {case}");
        }
    }
}

#[test]
fn allocator_first_fit_finds_any_sufficient_gap() {
    let mut rng = SimRng::seed_from_u64(0x5EED_0004);
    for case in 0..64 {
        // Alloc all, free every other one, then: alloc(probe) succeeds iff
        // some gap >= probe exists (largest_free is the oracle).
        let mut alloc = LinearAllocator::new(256);
        let mut regions = Vec::new();
        let count = 1 + rng.range_usize(7);
        for _ in 0..count {
            let len = 8 + rng.range_u64(56) as u32;
            if let Some(r) = alloc.alloc(len) {
                regions.push(r);
            }
        }
        for (i, r) in regions.iter().enumerate() {
            if i % 2 == 0 {
                alloc.free(*r);
            }
        }
        let probe = 1 + rng.range_u64(63) as u32;
        let can = alloc.largest_free() >= probe;
        assert_eq!(alloc.alloc(probe).is_some(), can, "case {case}");
    }
}

#[test]
fn cache_tracks_reference_lru() {
    let mut rng = SimRng::seed_from_u64(0x5EED_0005);
    for case in 0..32 {
        // 2 sets x 4 ways vs. a per-set reference LRU list.
        let mut cache = SetAssocCache::new(8 * 128, 4, 128);
        let mut reference: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        let accesses = 1 + rng.range_usize(300);
        for _ in 0..accesses {
            let line = rng.range_u64(24);
            let set = (line % 2) as usize;
            let hit = cache.access(line) == ProbeResult::Hit;
            let ref_hit = reference[set].contains(&line);
            assert_eq!(hit, ref_hit, "case {case}: line {line} divergence");
            // Touch/fill in the reference model.
            reference[set].retain(|&l| l != line);
            reference[set].push(line);
            if reference[set].len() > 4 {
                reference[set].remove(0);
            }
            if !hit {
                cache.fill(line);
            }
        }
    }
}

#[test]
fn profile_curves_are_bounded_by_scaled_samples() {
    let mut rng = SimRng::seed_from_u64(0x5EED_0006);
    for case in 0..32 {
        let ipcs: Vec<f64> = (0..8).map(|_| rng.unit_f64() * 4.0).collect();
        let samples: Vec<ProfileSample> = ipcs
            .iter()
            .enumerate()
            .map(|(i, &ipc)| ProfileSample {
                kernel: 0,
                ctas: i as u32 + 1,
                ipc_sampled: ipc,
                phi_mem: 0.0,
                bandwidth: None,
            })
            .collect();
        let curves = build_curves(&samples, &[8]);
        assert_eq!(curves.len(), 1, "case {case}");
        let max_in = ipcs.iter().copied().fold(0.0f64, f64::max);
        for v in &curves[0] {
            assert!(*v >= 0.0, "case {case}");
            // phi = 0: no scaling, so the curve cannot exceed the samples.
            assert!(*v <= max_in + 1e-9, "case {case}");
        }
    }
}
